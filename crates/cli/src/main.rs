//! `nomap` — command-line driver for the NoMap VM.
//!
//! ```text
//! nomap run <file.js> [--arch <name>] [--tier <cap>] [--warmup N] [--stats]
//! nomap trace <file.js> [--arch <name>] [--warmup N] [--ring N] [--last N] [--jsonl <path>]
//! nomap profile <file.js> [--arch <name>] [--tier <cap>] [--warmup N] [--top N] [--json]
//! nomap bench-diff <old> <new> [--threshold PCT]
//! nomap lint <file.js> [--arch <name>] [--warmup N] [--json] [--deny-warnings]
//! nomap prove <file.js> [--arch <name>] [--warmup N] [--census] [--json]
//! nomap ipa <file.js> [--arch <name>] [--warmup N] [--json]
//! nomap aborts [<file.js>] [--arch <name>] [--warmup N] [--jobs N] [--top N] [--json] [--calibration]
//! nomap disasm <file.js> <function> [--arch <name>] [--tier <baseline|dfg|ftl>]
//! nomap corpus [--arch <name>] [--warmup N] [--jobs N] [--budget CYCLES]
//! nomap hostprof [--arch <name>] [--warmup N] [--jobs N] [--top N] [--json] [--digrams] [--flame <path>] [--hostbench-dir <dir>]
//! nomap archs
//! ```
//!
//! The script's top level runs once; if it defines `run()`, that function is
//! warmed to steady state and measured. `trace` replays the same protocol
//! with lifecycle-event tracing enabled and prints a timeline plus a
//! metrics summary (optionally streaming every event as JSON Lines).
//! `profile` runs with cycle attribution enabled and prints the hot-spot
//! tables (every simulated cycle charged to a function × tier × region
//! scope). `bench-diff` compares two `BENCH_*.json` cycle-count files (or
//! two directories of them) and exits nonzero on regressions — the CI perf
//! gate. `prove` runs the proof-carrying check-elision census: a profiled
//! run joins the dynamic check tallies against the static range/type
//! verdicts and exits nonzero when a statically proved-to-fail check was
//! actually reached. `ipa` prints the interprocedural summary report: the
//! call graph (roots, recursion), the per-function summary table (return
//! abstraction, argument preconditions, heap effect) as validated by
//! `ipa-tv`, and the verdict delta — every function compiled with and
//! without the summary table, showing which checks and §V-C transaction
//! seeds cross-function reasoning wins. `aborts` is the abort-forensics
//! observatory: with a script it prints per-abort blame (faulting cache
//! set and victim-set occupancy, read/write footprints at the point of
//! failure, ladder attempt) plus the static-vs-dynamic calibration table;
//! without a script it sweeps the whole corpus through the sharded
//! harness (`--jobs`-invariant stdout) printing one calibration summary
//! line per workload. `--calibration` restricts the per-script report to
//! the calibration table; `--top N` bounds the blame-site listing.
//! `corpus` runs every bundled workload through the
//! sharded `nomap-fleet` harness (`--jobs N` / `NOMAP_JOBS`); stdout is
//! byte-identical for any worker count, scheduling telemetry goes to
//! stderr. `hostprof` runs the same corpus with the host-time &
//! allocation observatory enabled: stdout carries only deterministic
//! counters (opcode/digram census, span entry and allocation counts, still
//! `--jobs`-invariant), while wall-clock tables and `host-span` JSON Lines
//! events go to stderr. `--digrams` prints just the digram table (the
//! committed `results/digrams.txt`), `--flame` writes collapsed stacks for
//! flamegraph tools, `--hostbench-dir` writes the `HOSTBENCH_corpus.json`
//! document, and `--json` prints that document to stdout instead of the
//! tables (it embeds nondeterministic wall times).

use std::process::ExitCode;

/// The counting allocator is opt-in per binary; installing it here gives
/// `nomap hostprof` real allocation attribution. Every other subcommand
/// pays one relaxed atomic load per allocation (observatory disabled).
#[global_allocator]
static ALLOC: nomap_hostprof::CountingAlloc = nomap_hostprof::CountingAlloc;

use nomap_fleet::FleetConfig;
use nomap_trace::{obj, JsonValue};
use nomap_vm::{
    bench_diff, Architecture, BenchRows, CheckKind, HotSpotReport, InstCategory, JsonlSink, Tier,
    TierLimit, TraceEvent, Vm, VmConfig,
};
use nomap_workloads::fleet::{corpus, report_summary, run_corpus_sharded, CorpusMerge};
use nomap_workloads::RunSpec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("bench-diff") => cmd_bench_diff(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("prove") => cmd_prove(&args[1..]),
        Some("ipa") => cmd_ipa(&args[1..]),
        Some("aborts") => cmd_aborts(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("hostprof") => cmd_hostprof(&args[1..]),
        Some("archs") => {
            for a in Architecture::ALL {
                println!("{}", a.name());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage:\n  nomap run <file.js> [--arch <name>] [--tier <cap>] [--warmup N] [--stats]\n  nomap trace <file.js> [--arch <name>] [--warmup N] [--ring N] [--last N] [--jsonl <path>]\n  nomap profile <file.js> [--arch <name>] [--tier <cap>] [--warmup N] [--top N] [--json]\n  nomap bench-diff <old> <new> [--threshold PCT]\n  nomap lint <file.js> [--arch <name>] [--warmup N] [--json] [--deny-warnings]\n  nomap prove <file.js> [--arch <name>] [--warmup N] [--census] [--json]\n  nomap ipa <file.js> [--arch <name>] [--warmup N] [--json]\n  nomap aborts [<file.js>] [--arch <name>] [--warmup N] [--jobs N] [--top N] [--json] [--calibration]\n  nomap disasm <file.js> <function> [--arch <name>] [--tier <baseline|dfg|ftl>]\n  nomap corpus [--arch <name>] [--warmup N] [--jobs N] [--budget CYCLES]\n  nomap hostprof [--arch <name>] [--warmup N] [--jobs N] [--top N] [--json] [--digrams] [--flame <path>] [--hostbench-dir <dir>]\n  nomap archs"
            );
            ExitCode::from(2)
        }
    }
}

fn parse_arch(s: &str) -> Option<Architecture> {
    Architecture::ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(s))
}

fn parse_tier_limit(s: &str) -> Option<TierLimit> {
    Some(match s.to_ascii_lowercase().as_str() {
        "interpreter" | "interp" => TierLimit::Interpreter,
        "baseline" => TierLimit::Baseline,
        "dfg" => TierLimit::Dfg,
        "ftl" => TierLimit::Ftl,
        _ => return None,
    })
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn build_vm(args: &[String]) -> Result<(Vm, bool), String> {
    let file = args.first().ok_or("missing script path")?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let arch = match flag_value(args, "--arch") {
        Some(s) => parse_arch(s).ok_or_else(|| format!("unknown architecture `{s}`"))?,
        None => Architecture::NoMap,
    };
    let mut config = VmConfig::new(arch);
    if let Some(s) = flag_value(args, "--tier") {
        config.tier_limit = parse_tier_limit(s).ok_or_else(|| format!("unknown tier cap `{s}`"))?;
    }
    let vm = Vm::with_config(&src, config).map_err(|e| e.to_string())?;
    let stats = args.iter().any(|a| a == "--stats");
    Ok((vm, stats))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let (mut vm, want_stats) = match build_vm(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warmup: u32 = flag_value(args, "--warmup").and_then(|s| s.parse().ok()).unwrap_or(120);
    if let Err(e) = vm.run_main() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", vm.output());
    if vm.program.function_ids.contains_key("run") {
        for _ in 0..warmup {
            if let Err(e) = vm.call("run", &[]) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        vm.reset_stats();
        match vm.call("run", &[]) {
            Ok(v) => println!("run() = {v:?}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if want_stats {
        let s = &vm.stats;
        println!("--- steady-state statistics ({}) ---", vm.config.arch.name());
        println!("instructions : {}", s.total_insts());
        for c in InstCategory::ALL {
            println!("  {:<8}   : {}", format!("{c:?}"), s.insts(c));
        }
        println!(
            "cycles       : {} (TM {}, non-TM {})",
            s.total_cycles(),
            s.cycles_tm,
            s.cycles_non_tm
        );
        println!("checks       : {}", s.total_checks());
        for k in CheckKind::ALL {
            println!("  {:<9}  : {}", format!("{k:?}"), s.checks(k));
        }
        println!(
            "transactions : {} begun, {} committed, {} aborted",
            s.tx_begun,
            s.tx_committed,
            s.total_aborts()
        );
        println!("deopts       : {}", s.deopts);
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let (mut vm, _) = match build_vm(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warmup: u32 = flag_value(args, "--warmup").and_then(|s| s.parse().ok()).unwrap_or(120);
    let ring: usize = flag_value(args, "--ring").and_then(|s| s.parse().ok()).unwrap_or(65536);
    let show_last: usize = flag_value(args, "--last").and_then(|s| s.parse().ok()).unwrap_or(40);
    vm.enable_tracing(ring);
    let jsonl_path = flag_value(args, "--jsonl").map(str::to_owned);
    if let Some(path) = &jsonl_path {
        match std::fs::File::create(path) {
            Ok(f) => vm.add_trace_sink(Box::new(JsonlSink::new(std::io::BufWriter::new(f)))),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = vm.run_main() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", vm.output());
    if vm.program.function_ids.contains_key("run") {
        for _ in 0..=warmup {
            if let Err(e) = vm.call("run", &[]) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    vm.flush_trace();

    let events = vm.trace();
    let total = vm.trace_emitted();
    println!("--- event timeline ({} under {}) ---", total, vm.config.arch.name());
    if events.len() < total as usize {
        println!("(ring retained the most recent {} of {total} events)", events.len());
    }
    let skip = events.len().saturating_sub(show_last);
    if skip > 0 {
        println!("... {skip} earlier events (rerun with --last N to see more) ...");
    }
    for rec in &events[skip..] {
        println!("{}", rec.event.render(rec.seq, rec.cycles));
    }
    println!();
    println!("--- trace summary ---");
    print!("{}", vm.trace_metrics().summary());
    println!(
        "compiles: {} dfg, {} ftl; deopts: {}",
        vm.stats.dfg_compiles, vm.stats.ftl_compiles, vm.stats.deopts
    );
    if let Some(path) = &jsonl_path {
        println!("jsonl: {total} events written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let (mut vm, _) = match build_vm(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warmup: u32 = flag_value(args, "--warmup").and_then(|s| s.parse().ok()).unwrap_or(120);
    let top: usize = flag_value(args, "--top").and_then(|s| s.parse().ok()).unwrap_or(20);
    let as_json = args.iter().any(|a| a == "--json");
    // Profile the whole execution — warm-up included — so tier-up, deopt
    // replay and the §V-C retry ladder all show up in the attribution.
    vm.enable_profiling();
    if let Err(e) = vm.run_main() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if !as_json {
        print!("{}", vm.output());
    }
    if vm.program.function_ids.contains_key("run") {
        for _ in 0..=warmup {
            if let Err(e) = vm.call("run", &[]) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report =
        HotSpotReport::new(vm.profile().expect("profiling enabled").clone(), vm.profile_names())
            .with_stats_total(vm.stats.total_cycles());
    if as_json {
        println!("{}", report.to_json().render());
    } else {
        println!("--- cycle attribution ({}) ---", vm.config.arch.name());
        print!("{}", report.render_text(top));
    }
    ExitCode::SUCCESS
}

/// Loads one `BENCH_*.json` file, or every `BENCH_*.json` under a
/// directory merged into one row set keyed by artifact-qualified bench
/// names.
fn load_bench_rows(path: &str) -> Result<BenchRows, String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?;
    if !meta.is_dir() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return BenchRows::parse(&text).map_err(|e| format!("{path}: {e}"));
    }
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("{path}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{path}: no BENCH_*.json files"));
    }
    let mut merged = BenchRows::new("all");
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let rows = BenchRows::parse(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        for r in &rows.rows {
            merged.push(&format!("{}/{}", rows.artifact, r.bench), &r.config, r.cycles, r.insts);
        }
    }
    Ok(merged)
}

fn cmd_bench_diff(args: &[String]) -> ExitCode {
    let (Some(old_path), Some(new_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: nomap bench-diff <old.json|dir> <new.json|dir> [--threshold PCT]");
        return ExitCode::from(2);
    };
    let threshold_pct: f64 = match flag_value(args, "--threshold").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(2.0),
        Err(_) => {
            eprintln!("error: --threshold wants a percentage (e.g. 2)");
            return ExitCode::from(2);
        }
    };
    let threshold = threshold_pct / 100.0;
    let (old, new) = match (load_bench_rows(old_path), load_bench_rows(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diff = bench_diff(&old, &new, threshold);
    print!("{}", diff.render(threshold));
    if diff.is_ok() {
        println!("bench-diff OK: {} row(s) within {threshold_pct}% of baseline", new.rows.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "bench-diff FAILED: {} regression(s), {} missing row(s) (threshold {threshold_pct}%)",
            diff.regressions.len(),
            diff.missing.len()
        );
        ExitCode::FAILURE
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let file = match args.first() {
        Some(f) => f,
        None => {
            eprintln!("error: missing script path");
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let arch = match flag_value(args, "--arch") {
        Some(s) => match parse_arch(s) {
            Some(a) => a,
            None => {
                eprintln!("error: unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let warmup: u32 = flag_value(args, "--warmup").and_then(|s| s.parse().ok()).unwrap_or(150);
    let as_json = args.iter().any(|a| a == "--json");
    let report = match nomap_vm::lint_source(&src, arch, warmup) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let errors = report.errors().count();
    if as_json {
        for d in &report.diagnostics {
            let m: Vec<(&str, JsonValue)> = vec![
                ("code", d.code.as_str().into()),
                ("severity", if d.is_error() { "error".into() } else { "warning".into() }),
                ("func", d.func.as_str().into()),
                ("stage", d.stage.as_str().into()),
                ("block", d.block.map_or(JsonValue::Null, |b| b.0.into())),
                ("value", d.value.map_or(JsonValue::Null, |v| v.0.into())),
                ("message", d.message.as_str().into()),
            ];
            println!("{}", obj(m).render());
        }
        let summary: Vec<(&str, JsonValue)> = vec![
            ("functions", report.functions.into()),
            ("stages", report.stages.into()),
            ("findings", report.diagnostics.len().into()),
            ("errors", errors.into()),
            ("clean", report.clean().into()),
        ];
        println!("{}", obj(summary).render());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "{file}: {} function(s), {} verification stage(s), {} finding(s) ({errors} error(s)) under {}",
            report.functions,
            report.stages,
            report.diagnostics.len(),
            arch.name()
        );
    }
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    if !report.clean() || (deny_warnings && !report.diagnostics.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_prove(args: &[String]) -> ExitCode {
    let file = match args.first() {
        Some(f) => f,
        None => {
            eprintln!("error: missing script path");
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let arch = match flag_value(args, "--arch") {
        Some(s) => match parse_arch(s) {
            Some(a) => a,
            None => {
                eprintln!("error: unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let warmup: u32 = flag_value(args, "--warmup").and_then(|s| s.parse().ok()).unwrap_or(150);
    let as_json = args.iter().any(|a| a == "--json");
    let census = args.iter().any(|a| a == "--census");
    let report = match nomap_vm::prove_source(&src, arch, warmup) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if as_json {
        println!("{}", report.to_json(arch).render());
    } else {
        if census {
            println!("--- check census ({}) ---", arch.name());
            print!("{}", report.render_census());
            for d in &report.diagnostics {
                println!("{d}");
            }
        }
        println!("{}", report.summary(arch));
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "error: {} reachable check group(s) statically proved to fail",
            report.reachable_proved_fail()
        );
        ExitCode::FAILURE
    }
}

fn cmd_ipa(args: &[String]) -> ExitCode {
    let file = match args.first() {
        Some(f) => f,
        None => {
            eprintln!("error: missing script path");
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let arch = match flag_value(args, "--arch") {
        Some(s) => match parse_arch(s) {
            Some(a) => a,
            None => {
                eprintln!("error: unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let warmup: u32 = flag_value(args, "--warmup").and_then(|s| s.parse().ok()).unwrap_or(150);
    let as_json = args.iter().any(|a| a == "--json");
    let report = match nomap_vm::ipa_source(&src, arch, warmup) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if as_json {
        println!("{}", report.to_json(arch).render());
    } else {
        println!("--- interprocedural summary report ({}) ---", arch.name());
        print!("{}", report.render());
    }
    ExitCode::SUCCESS
}

/// `nomap aborts` — abort forensics and the static-vs-dynamic footprint
/// calibration observatory. With a script argument it reports one
/// program; without one it sweeps the whole bundled corpus through the
/// sharded fleet harness, printing one canonical-order calibration line
/// per workload (stdout is byte-identical for any `--jobs` value;
/// scheduling telemetry goes to stderr). Exits nonzero when any workload
/// has an unexplained under-prediction.
fn cmd_aborts(args: &[String]) -> ExitCode {
    let arch = match flag_value(args, "--arch") {
        Some(s) => match parse_arch(s) {
            Some(a) => a,
            None => {
                eprintln!("error: unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let warmup: u32 = flag_value(args, "--warmup").and_then(|s| s.parse().ok()).unwrap_or(150);
    let top: usize = flag_value(args, "--top").and_then(|s| s.parse().ok()).unwrap_or(20);
    let as_json = args.iter().any(|a| a == "--json");
    let calibration_only = args.iter().any(|a| a == "--calibration");

    // File mode: the first argument names a script.
    if let Some(file) = args.first().filter(|a| !a.starts_with("--")) {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = match nomap_vm::aborts_source(&src, arch, warmup) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if as_json {
            println!("{}", report.to_json(arch).render());
        } else {
            println!("--- abort forensics ({}) ---", arch.name());
            if calibration_only {
                print!("{}", report.render(0));
            } else {
                print!("{}", report.render(top));
            }
        }
        return if report.unexplained_under_predictions() == 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "error: {} unexplained under-prediction(s)",
                report.unexplained_under_predictions()
            );
            ExitCode::FAILURE
        };
    }

    // Corpus mode: one calibration line per workload, canonical order.
    let fleet = match FleetConfig::from_args(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let workloads = corpus();
    let run = nomap_fleet::run_sharded(workloads.len(), &fleet, |i| {
        nomap_vm::aborts_source(workloads[i].source, arch, warmup).map_err(|e| e.to_string())
    });
    let mut unexplained = 0usize;
    let mut failed = 0usize;
    let mut docs: Vec<JsonValue> = Vec::new();
    for shard in &run.shards {
        let id = workloads[shard.index].id;
        match &shard.outcome {
            Ok(r) => {
                println!("{id:<6} {}", r.summary());
                unexplained += r.unexplained_under_predictions();
                if as_json {
                    docs.push(obj(vec![("id", id.into()), ("report", r.to_json(arch))]));
                }
            }
            Err(e) => {
                println!("{id:<6} FAILED after {} attempt(s): {e}", shard.attempts);
                failed += 1;
            }
        }
    }
    println!(
        "aborts: {} workloads under {}: {} unexplained under-prediction(s), {} failed",
        run.summary.shards,
        arch.name(),
        unexplained,
        failed
    );
    if as_json {
        let doc = obj(vec![
            ("arch", arch.name().into()),
            ("workloads", JsonValue::Array(docs)),
            ("unexplained", unexplained.into()),
        ]);
        println!("{}", doc.render());
    }
    report_summary(&run.summary);
    if unexplained > 0 || failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_disasm(args: &[String]) -> ExitCode {
    let func = match args.get(1) {
        Some(f) => f.clone(),
        None => {
            eprintln!("error: missing function name");
            return ExitCode::from(2);
        }
    };
    let (mut vm, _) = match build_vm(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tier = match flag_value(args, "--tier") {
        Some("baseline") => Tier::Baseline,
        Some("dfg") => Tier::Dfg,
        None | Some("ftl") => Tier::Ftl,
        Some(other) => {
            eprintln!("error: unknown tier `{other}`");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = vm.run_main() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if vm.program.function_ids.contains_key("run") {
        for _ in 0..150 {
            if vm.call("run", &[]).is_err() {
                break;
            }
        }
    }
    match vm.disassemble(&func, tier) {
        Some(text) => {
            println!("; {} at {tier:?} under {}", func, vm.config.arch.name());
            print!("{text}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("error: `{func}` has no {tier:?} code (not hot enough, or unknown function)");
            ExitCode::FAILURE
        }
    }
}

/// `nomap corpus` — run every bundled workload (SunSpider, Kraken,
/// Shootout; 52 in all) through the sharded fleet harness and print one
/// canonical-order line per workload plus a merged corpus summary.
/// Scheduling telemetry (wall-times, queue occupancy) goes to stderr so
/// stdout stays byte-identical for any `--jobs` value.
fn cmd_corpus(args: &[String]) -> ExitCode {
    let arch = match flag_value(args, "--arch") {
        Some(s) => match parse_arch(s) {
            Some(a) => a,
            None => {
                eprintln!("error: unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let fleet = match FleetConfig::from_args(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let warmup: u32 = flag_value(args, "--warmup").and_then(|s| s.parse().ok()).unwrap_or(120);
    let mut spec = RunSpec::steady(arch);
    spec.warmup = warmup;
    if let Some(s) = flag_value(args, "--budget") {
        match s.parse::<u64>() {
            Ok(cycles) => spec = spec.with_budget(cycles),
            Err(_) => {
                eprintln!("error: --budget wants a cycle count");
                return ExitCode::from(2);
            }
        }
    }
    let specs: Vec<_> = corpus().into_iter().map(|w| (w, spec)).collect();
    let run = run_corpus_sharded(&specs, &fleet);
    for shard in &run.shards {
        let id = specs[shard.index].0.id;
        match &shard.outcome {
            Ok(r) => println!(
                "{:<6} checksum={:?} insts={} cycles={} commits={} aborts={}",
                id,
                r.checksum,
                r.stats.total_insts(),
                r.stats.total_cycles(),
                r.stats.tx_committed,
                r.stats.total_aborts()
            ),
            Err(e) => println!("{id:<6} FAILED after {} attempt(s): {e}", shard.attempts),
        }
    }
    let merged = CorpusMerge::from_runs(run.shards.iter().filter_map(|s| s.outcome.as_ref().ok()));
    if !merged.output.is_empty() {
        print!("{}", merged.output);
    }
    println!(
        "corpus: {} workloads under {}: {} insts, {} cycles, {} tx committed, {} profiled cycles, {} failed",
        run.summary.shards,
        arch.name(),
        merged.stats.total_insts(),
        merged.stats.total_cycles(),
        merged.stats.tx_committed,
        merged.profile.ledger.total(),
        run.summary.failed
    );
    report_summary(&run.summary);
    if run.summary.failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Top-`top` rows of a census map, count-descending then name ascending —
/// the deterministic dynamic-frequency tables `hostprof` prints and the CI
/// host-observatory lane byte-diffs across `--jobs` values.
fn census_table(
    kind: &str,
    counts: &std::collections::BTreeMap<String, u64>,
    top: usize,
) -> String {
    let mut rows: Vec<(&String, &u64)> = counts.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    let mut out = String::new();
    out.push_str(&format!("{:<32} {:>14}\n", kind, "count"));
    for (name, n) in rows.into_iter().take(top) {
        out.push_str(&format!("{name:<32} {n:>14}\n"));
    }
    out
}

/// `nomap hostprof` — run the corpus under the host-time & allocation
/// observatory. Stdout carries only deterministic counters (byte-identical
/// for any `--jobs` value); wall-clock span tables, `host-span` trace
/// events and fleet scheduling telemetry go to stderr. Exits nonzero on
/// shard failure or a span-conservation violation (a parent span reporting
/// less wall time or allocation than the sum of its direct children).
fn cmd_hostprof(args: &[String]) -> ExitCode {
    let arch = match flag_value(args, "--arch") {
        Some(s) => match parse_arch(s) {
            Some(a) => a,
            None => {
                eprintln!("error: unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let fleet = match FleetConfig::from_args(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let warmup: u32 = flag_value(args, "--warmup").and_then(|s| s.parse().ok()).unwrap_or(120);
    let top: usize = flag_value(args, "--top").and_then(|s| s.parse().ok()).unwrap_or(32);
    let as_json = args.iter().any(|a| a == "--json");
    let digrams_only = args.iter().any(|a| a == "--digrams");
    let flame_path = flag_value(args, "--flame").map(str::to_owned);
    let hostbench_dir = flag_value(args, "--hostbench-dir").map(str::to_owned);

    nomap_hostprof::reset();
    nomap_hostprof::set_enabled(true);
    let mut spec = RunSpec::steady(arch);
    spec.warmup = warmup;
    let specs: Vec<_> = corpus().into_iter().map(|w| (w, spec)).collect();
    let run = run_corpus_sharded(&specs, &fleet);
    nomap_hostprof::set_enabled(false);

    for shard in &run.shards {
        if let Err(e) = &shard.outcome {
            let id = specs[shard.index].0.id;
            eprintln!("{id:<6} FAILED after {} attempt(s): {e}", shard.attempts);
        }
    }
    let merged = CorpusMerge::from_runs(run.shards.iter().filter_map(|s| s.outcome.as_ref().ok()));
    let report = nomap_hostprof::snapshot();

    if digrams_only {
        print!("{}", census_table("digram", &merged.metrics.digrams, top));
    } else if as_json {
        print!(
            "{}",
            nomap_hostprof::render_doc(
                "corpus",
                &report,
                &merged.metrics.opcodes,
                &merged.metrics.digrams
            )
        );
    } else {
        println!("--- opcode census (dynamic counts, {}) ---", arch.name());
        print!("{}", census_table("opcode", &merged.metrics.opcodes, top));
        println!();
        println!("--- digram census (dynamic counts, statically adjacent) ---");
        print!("{}", census_table("digram", &merged.metrics.digrams, top));
        println!();
        println!("--- host spans (deterministic columns) ---");
        print!("{}", report.render_deterministic());
    }

    eprintln!("--- host spans by wall time ---");
    eprint!("{}", report.render_wall());
    for (seq, (path, s)) in report.spans.iter().enumerate() {
        let ev = TraceEvent::HostSpan {
            path: path.clone(),
            count: s.count,
            wall_ns: s.wall_ns,
            allocs: s.allocs,
            alloc_bytes: s.alloc_bytes,
        };
        eprintln!("{}", ev.to_json(seq as u64, 0).render());
    }
    report_summary(&run.summary);

    let violations = report.conservation_violations();
    for v in &violations {
        eprintln!("conservation violation: {v}");
    }

    if let Some(path) = &flame_path {
        if let Err(e) = std::fs::write(path, report.collapsed()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("flamegraph: collapsed stacks written to {path}");
    }
    if let Some(dir) = &hostbench_dir {
        let doc = nomap_hostprof::render_doc(
            "corpus",
            &report,
            &merged.metrics.opcodes,
            &merged.metrics.digrams,
        );
        let path = std::path::Path::new(dir).join("HOSTBENCH_corpus.json");
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("hostbench: host telemetry written to {}", path.display());
    }
    if run.summary.failed > 0 || !violations.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
