//! Property test (satellite of the static-analysis PR): for randomly
//! generated MiniJS programs, every tier pipeline under every architecture
//! must produce verifier-clean IR at every stage — the pass sanitizer
//! finds no SSA, dominance, phi, or transaction-safety violations, and
//! every bounds-combining application survives translation validation.
//!
//! The generator is a deterministic splitmix64-driven grammar walk (no
//! external fuzzing deps): nested counted loops, array reads/writes,
//! branches, compound assignments, break/continue. Failures print the
//! seed and the full source, so any regression is replayable.
//!
//! Every compile runs under the program's interprocedural summary table,
//! which must itself pass `ipa-tv` first — so the fuzz walk also covers
//! the summary fixpoint and its translation validator.

use nomap_core::{
    audit_summaries, compile_dfg_audited, compile_ftl_audited, compile_txn_callee_audited,
    Architecture, AuditOptions, TxnScope,
};
use nomap_ir::passes::PassConfig;
use nomap_runtime::Runtime;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a>(&mut self, xs: &'a [&'a str]) -> &'a str {
        xs[self.below(xs.len() as u64) as usize]
    }
}

struct Gen {
    rng: Rng,
    src: String,
    /// Scalar variables in scope.
    vars: Vec<String>,
    /// Loop nesting depth (gates break/continue and loop recursion).
    depth: u32,
    next_var: u32,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { rng: Rng(seed), src: String::new(), vars: Vec::new(), depth: 0, next_var: 0 }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.next_var += 1;
        format!("{prefix}{}", self.next_var)
    }

    fn var(&mut self) -> String {
        self.vars[self.rng.below(self.vars.len() as u64) as usize].clone()
    }

    /// A small arithmetic expression over in-scope scalars, constants and
    /// array reads.
    fn expr(&mut self, budget: u32) -> String {
        if budget == 0 || self.rng.below(3) == 0 {
            return match self.rng.below(3) {
                0 => format!("{}", self.rng.below(100)),
                1 => self.var(),
                _ => format!("a[{} % 64]", self.var()),
            };
        }
        let op = self.rng.pick(&["+", "-", "*", "&", "|", "^"]);
        let l = self.expr(budget - 1);
        let r = self.expr(budget - 1);
        format!("({l} {op} {r})")
    }

    fn cond(&mut self) -> String {
        let op = self.rng.pick(&["<", "<=", ">", ">=", "==", "!="]);
        let l = self.var();
        let r = self.expr(1);
        format!("{l} {op} {r}")
    }

    fn stmt(&mut self, budget: u32) {
        match self.rng.below(if self.depth > 0 { 7 } else { 5 }) {
            0 if budget > 0 && self.depth < 3 => self.for_loop(budget - 1),
            1 if budget > 0 => self.if_stmt(budget - 1),
            2 => {
                let i = self.var();
                let e = self.expr(2);
                self.src.push_str(&format!("a[{i} % 64] = {e};\n"));
            }
            3 => {
                let v = self.fresh("t");
                let e = self.expr(2);
                self.src.push_str(&format!("var {v} = {e};\n"));
                self.vars.push(v);
            }
            // Arms 5/6 are only reachable inside a loop.
            5 => {
                let c = self.cond();
                self.src.push_str(&format!("if ({c}) {{ break; }}\n"));
            }
            6 => {
                let c = self.cond();
                self.src.push_str(&format!("if ({c}) {{ continue; }}\n"));
            }
            // 4, plus guard fall-throughs from 0/1: plain assignment.
            _ => {
                let v = self.var();
                let e = self.expr(2);
                let op = self.rng.pick(&["=", "+=", "-=", "*="]);
                self.src.push_str(&format!("{v} {op} {e};\n"));
            }
        }
    }

    fn block(&mut self, budget: u32) {
        let n = 1 + self.rng.below(3);
        for _ in 0..n {
            self.stmt(budget);
        }
    }

    fn for_loop(&mut self, budget: u32) {
        let i = self.fresh("i");
        let bound = match self.rng.below(3) {
            0 => "n".to_string(),
            1 => format!("{}", 2 + self.rng.below(200)),
            _ => format!("{}", 1000 + self.rng.below(100_000)),
        };
        let step = self.rng.pick(&["++", " += 2"]);
        self.src.push_str(&format!("for (var {i} = 0; {i} < {bound}; {i}{step}) {{\n"));
        self.vars.push(i);
        self.depth += 1;
        self.block(budget);
        self.depth -= 1;
        self.vars.pop();
        self.src.push_str("}\n");
    }

    fn if_stmt(&mut self, budget: u32) {
        let c = self.cond();
        self.src.push_str(&format!("if ({c}) {{\n"));
        self.block(budget);
        if self.rng.below(2) == 0 {
            self.src.push_str("} else {\n");
            self.block(budget);
        }
        self.src.push_str("}\n");
    }

    fn function(mut self) -> String {
        self.src.push_str("function f(a, n) {\nvar s = 0;\nvar x = 1;\n");
        self.vars = vec!["s".into(), "x".into(), "n".into()];
        let n = 2 + self.rng.below(3);
        for _ in 0..n {
            self.stmt(3);
        }
        self.src.push_str("return s;\n}\n");
        self.src
    }
}

#[test]
fn random_programs_are_verifier_clean_on_every_architecture() {
    let scopes =
        [TxnScope::Nest, TxnScope::Inner, TxnScope::InnerTiled(8), TxnScope::InnerTiled(256)];
    for seed in 0..48u64 {
        let src = Gen::new(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1).function();
        let program = match nomap_bytecode::compile_program(&src) {
            Ok(p) => p,
            Err(e) => panic!("seed {seed}: generator produced invalid MiniJS ({e:?}):\n{src}"),
        };
        let f = program.function_named("f").unwrap();
        let mut rt = Runtime::new();
        let opts = AuditOptions { verify: true, seed_scope: false };
        let ipa = nomap_ir::summarize(&program);
        let ipa_diags = audit_summaries(&program, &ipa);
        assert!(ipa_diags.is_empty(), "seed {seed} ipa-tv: {ipa_diags:?}\n{src}");

        let dfg = compile_dfg_audited(f, &mut rt, opts, Some(&ipa)).unwrap();
        assert!(dfg.clean(), "seed {seed} dfg: {:?}\n{src}", dfg.diagnostics);

        for arch in Architecture::ALL {
            let scope = scopes[(seed % scopes.len() as u64) as usize];
            let audit =
                compile_ftl_audited(f, &mut rt, arch, scope, PassConfig::ftl(), opts, Some(&ipa))
                    .unwrap();
            assert!(
                audit.clean(),
                "seed {seed} {arch:?} {scope:?}: {:?}\n{src}",
                audit.diagnostics
            );
            assert!(audit.code.is_some());

            let callee =
                compile_txn_callee_audited(f, &mut rt, arch, PassConfig::ftl(), opts, Some(&ipa))
                    .unwrap();
            assert!(callee.clean(), "seed {seed} {arch:?} callee: {:?}\n{src}", callee.diagnostics);
        }
    }
}

/// Scope seeding on random programs must terminate, never upgrade the
/// requested rung, and still end verifier-clean.
#[test]
fn random_programs_seed_scope_cleanly() {
    for seed in 100..124u64 {
        let src = Gen::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) + 7).function();
        let program = nomap_bytecode::compile_program(&src).unwrap();
        let f = program.function_named("f").unwrap();
        let mut rt = Runtime::new();
        let opts = AuditOptions { verify: true, seed_scope: true };
        let audit = compile_ftl_audited(
            f,
            &mut rt,
            Architecture::NoMap,
            TxnScope::Nest,
            PassConfig::ftl(),
            opts,
            None,
        )
        .unwrap();
        assert!(audit.clean(), "seed {seed}: {:?}\n{src}", audit.diagnostics);
        assert!(audit.code.is_some());
    }
}
