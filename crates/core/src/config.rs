//! The evaluated architectures (paper Table II).

use nomap_machine::HtmModel;

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Unmodified JavaScriptCore-style VM. No transactions.
    Base,
    /// Simple NoMap: transactions inserted, SMPs replaced with aborts,
    /// optimizations run across the former SMPs.
    NoMapS,
    /// `NoMapS` + hoisting/sinking bounds checks.
    NoMapB,
    /// `NoMapB` + SOF overflow-check removal — the proposed design.
    NoMap,
    /// Unrealistic best case: all checks within transactions removed.
    NoMapBc,
    /// `NoMapB` running on Intel RTM hardware (no SOF; tighter footprints;
    /// expensive commits; slower transactional reads).
    NoMapRtm,
}

impl Architecture {
    /// All configurations in the paper's bar order.
    pub const ALL: [Architecture; 6] = [
        Architecture::Base,
        Architecture::NoMapS,
        Architecture::NoMapB,
        Architecture::NoMap,
        Architecture::NoMapBc,
        Architecture::NoMapRtm,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::Base => "Base",
            Architecture::NoMapS => "NoMap_S",
            Architecture::NoMapB => "NoMap_B",
            Architecture::NoMap => "NoMap",
            Architecture::NoMapBc => "NoMap_BC",
            Architecture::NoMapRtm => "NoMap_RTM",
        }
    }

    /// Whether FTL compilation inserts transactions.
    pub fn uses_transactions(self) -> bool {
        self != Architecture::Base
    }

    /// The HTM hardware this configuration targets.
    pub fn htm_model(self) -> HtmModel {
        match self {
            Architecture::Base => HtmModel::none(),
            Architecture::NoMapRtm => HtmModel::rtm(),
            _ => HtmModel::rot(),
        }
    }

    /// Whether the bounds-check combining pass runs.
    pub fn combines_bounds(self) -> bool {
        matches!(
            self,
            Architecture::NoMapB
                | Architecture::NoMap
                | Architecture::NoMapBc
                | Architecture::NoMapRtm
        )
    }

    /// Whether SOF overflow-check removal runs (requires SOF hardware, so
    /// not under RTM — paper §VI-B).
    pub fn removes_overflow(self) -> bool {
        matches!(self, Architecture::NoMap | Architecture::NoMapBc)
    }

    /// Whether every remaining in-transaction check is stripped
    /// (`NoMap_BC` only).
    pub fn strips_all_checks(self) -> bool {
        self == Architecture::NoMapBc
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomap_machine::HtmKind;

    #[test]
    fn table_ii_feature_matrix() {
        use Architecture::*;
        assert!(!Base.uses_transactions());
        assert!(NoMapS.uses_transactions() && !NoMapS.combines_bounds());
        assert!(NoMapB.combines_bounds() && !NoMapB.removes_overflow());
        assert!(NoMap.combines_bounds() && NoMap.removes_overflow());
        assert!(NoMapBc.strips_all_checks());
        assert!(NoMapRtm.combines_bounds() && !NoMapRtm.removes_overflow());
        assert_eq!(NoMapRtm.htm_model().kind, HtmKind::Rtm);
        assert_eq!(NoMap.htm_model().kind, HtmKind::Rot);
        assert_eq!(Base.htm_model().kind, HtmKind::None);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Architecture::NoMapBc.name(), "NoMap_BC");
        assert_eq!(Architecture::ALL.len(), 6);
    }
}
