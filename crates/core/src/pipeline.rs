//! Tier compilation pipelines.
//!
//! * DFG: speculative IR, local cleanup only, weaker back end.
//! * FTL `Base`: full optimization passes, SMPs intact — the passes are
//!   crippled exactly where the paper says they are.
//! * FTL NoMap: transactions first (before the optimizer, §IV-B "we perform
//!   this transformation before LLVM runs its optimization passes"), then
//!   the optimizer, then bounds combining and SOF removal on the
//!   now-abortable checks, then one more cleanup round.

use nomap_bytecode::Function;
use nomap_ir::ipa::ProgramSummaries;
use nomap_ir::passes::{prove_checks_with, run_pipeline, run_pipeline_observed, PassConfig};
use nomap_ir::{build_ir, BuildError, CheckMode, IrFunc, ProveStats, SpecLevel};
use nomap_jit::{lower, CodegenQuality, CompiledFn};
use nomap_machine::Tier;
use nomap_runtime::Runtime;

use crate::audit::Auditor;
use crate::config::Architecture;
use crate::txn::{abort_all_checks, place_transactions, strip_all_checks, TxnScope};
use crate::{combine_bounds_checks, remove_overflow_checks};

/// Runs one verifier stage when an auditor is attached.
fn audit(auditor: &mut Option<&mut Auditor>, ir: &IrFunc, stage: &str) {
    if let Some(a) = auditor.as_deref_mut() {
        a.check(ir, stage);
    }
}

/// Runs the optimizer; with a verifying auditor attached, the strict
/// verifier runs after every individual pass (the "pass sanitizer"), and
/// with the host observatory enabled each pass's wall time and allocation
/// delta is recorded as a `pass:<name>` leaf under the current span.
fn run_passes(ir: &mut IrFunc, passes: PassConfig, auditor: &mut Option<&mut Auditor>) {
    let verifying = matches!(auditor.as_deref(), Some(a) if a.verifying());
    let profiling = nomap_hostprof::enabled();
    if !verifying && !profiling {
        run_pipeline(ir, passes);
        return;
    }
    let mut lap = nomap_hostprof::PassLap::start(profiling);
    run_pipeline_observed(ir, passes, &mut |f, pass| {
        lap.lap(pass);
        if verifying {
            if let Some(a) = auditor.as_deref_mut() {
                a.check(f, &format!("after:{pass}"));
            }
        }
    });
}

/// Clones `ir` only when a verifying auditor will want a pre-pass snapshot
/// for translation validation.
fn snapshot_for(auditor: &Option<&mut Auditor>, ir: &IrFunc) -> Option<IrFunc> {
    match auditor {
        Some(a) if a.verifying() => Some(ir.clone()),
        _ => None,
    }
}

/// Proof-carrying check elision, shared by every tier pipeline: run the
/// abstract interpreter, delete proved-safe checks, translation-validate
/// each deletion against the pre-pass snapshot, surface proved-to-fail
/// checks as census warnings, and give the optimizer one more round when
/// anything was deleted (elided checks unpin OSR state and open up code
/// motion). Runs *after* bounds combining so the two validators see
/// disjoint deletion sets. When an interprocedural summary table is
/// supplied, the analysis consults callee return summaries and argument
/// preconditions instead of treating every cross-function value as
/// unknown — and the elision validator re-derives each witness under the
/// *same* table, so the tables themselves must be vouched for separately
/// (`ipa_tv`).
fn prove_stage(
    ir: &mut IrFunc,
    passes: PassConfig,
    auditor: &mut Option<&mut Auditor>,
    ipa: Option<&ProgramSummaries>,
) -> ProveStats {
    let snapshot = snapshot_for(auditor, ir);
    let stats = prove_checks_with(ir, ipa);
    if let (Some(before), Some(a)) = (&snapshot, auditor.as_deref_mut()) {
        a.validate_elision(before, ir, ipa);
    }
    if let Some(a) = auditor.as_deref_mut() {
        a.census(ir);
    }
    audit(auditor, ir, "post-prove");
    if stats.total_elided() > 0 {
        run_passes(ir, passes, auditor);
    }
    stats
}

/// Compiles `func` at the DFG tier.
///
/// # Errors
///
/// Propagates IR construction failures.
pub fn compile_dfg(func: &Function, rt: &mut Runtime) -> Result<CompiledFn, BuildError> {
    compile_dfg_with_report(func, rt, None).map(|(code, _)| code)
}

/// [`compile_dfg`], also reporting what the prove pass did (the DFG tier
/// runs no transaction passes, so only the `prove` stats are populated).
/// `ipa` optionally supplies validated interprocedural summaries for the
/// check-elision analysis.
///
/// # Errors
///
/// Propagates IR construction failures.
pub fn compile_dfg_with_report(
    func: &Function,
    rt: &mut Runtime,
    ipa: Option<&ProgramSummaries>,
) -> Result<(CompiledFn, CompileReport), BuildError> {
    let (ir, report) = compile_dfg_ir(func, rt, None, ipa)?;
    Ok((lower(&ir, CodegenQuality::Dfg, Tier::Dfg, false), report))
}

/// DFG pipeline up to (but excluding) lowering, with optional auditing.
pub(crate) fn compile_dfg_ir(
    func: &Function,
    rt: &mut Runtime,
    mut auditor: Option<&mut Auditor>,
    ipa: Option<&ProgramSummaries>,
) -> Result<(IrFunc, CompileReport), BuildError> {
    let _span = nomap_hostprof::span("compile:dfg");
    let built = {
        let _s = nomap_hostprof::span("build-ir");
        build_ir(func, rt, SpecLevel::Dfg)
    };
    let (mut ir, _info) = built?;
    audit(&mut auditor, &ir, "post-build");
    run_passes(&mut ir, PassConfig::dfg(), &mut auditor);
    let report = CompileReport {
        prove: prove_stage(&mut ir, PassConfig::dfg(), &mut auditor, ipa),
        ..CompileReport::default()
    };
    audit(&mut auditor, &ir, "final");
    Ok((ir, report))
}

/// Compiles `func` at the FTL tier under `arch`, wrapping transactions at
/// `scope` (ignored for `Base`).
///
/// # Errors
///
/// Propagates IR construction failures.
///
/// # Example
///
/// ```
/// use nomap_core::{compile_ftl, Architecture, TxnScope};
/// use nomap_runtime::Runtime;
///
/// let program = nomap_bytecode::compile_program(
///     "function f(n) { var s = 0; for (var i = 0; i < n; i++) { s += i; } return s; }",
/// )?;
/// let mut rt = Runtime::new();
/// let code = compile_ftl(
///     program.function_named("f").unwrap(),
///     &mut rt,
///     Architecture::NoMap,
///     TxnScope::Nest,
/// )?;
/// assert!(code.txn_aware);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile_ftl(
    func: &Function,
    rt: &mut Runtime,
    arch: Architecture,
    scope: TxnScope,
) -> Result<CompiledFn, BuildError> {
    compile_ftl_with(func, rt, arch, scope, PassConfig::ftl())
}

/// [`compile_ftl`] with an explicit optimizer configuration (ablations).
///
/// # Errors
///
/// Propagates IR construction failures.
pub fn compile_ftl_with(
    func: &Function,
    rt: &mut Runtime,
    arch: Architecture,
    scope: TxnScope,
    passes: PassConfig,
) -> Result<CompiledFn, BuildError> {
    compile_ftl_with_report(func, rt, arch, scope, passes, None).map(|(code, _)| code)
}

/// What one FTL compilation's transaction/optimizer passes achieved
/// (feeds the tracing layer's pass-outcome events).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileReport {
    /// Transactions placed around loops (§IV-B).
    pub transactions_placed: usize,
    /// Deopt-mode checks converted to transaction aborts by placement.
    pub checks_to_aborts: usize,
    /// Bounds checks removed by combining (§IV-C1).
    pub bounds_combined: usize,
    /// Overflow checks removed via the sticky overflow flag (§IV-C2).
    pub overflow_removed: usize,
    /// What the proof-carrying check-elision pass decided and deleted.
    pub prove: ProveStats,
}

fn abort_mode_checks(ir: &IrFunc) -> usize {
    ir.insts.iter().filter(|i| i.check_mode() == Some(CheckMode::Abort)).count()
}

/// [`compile_ftl_with`], also reporting what the transaction passes did.
/// `ipa` optionally supplies validated interprocedural summaries for the
/// check-elision analysis.
///
/// # Errors
///
/// Propagates IR construction failures.
pub fn compile_ftl_with_report(
    func: &Function,
    rt: &mut Runtime,
    arch: Architecture,
    scope: TxnScope,
    passes: PassConfig,
    ipa: Option<&ProgramSummaries>,
) -> Result<(CompiledFn, CompileReport), BuildError> {
    let (ir, report, txn_aware) = compile_ftl_ir(func, rt, arch, scope, passes, None, ipa)?;
    Ok((lower(&ir, CodegenQuality::Ftl, Tier::Ftl, txn_aware), report))
}

/// FTL pipeline up to (but excluding) lowering, with optional auditing.
/// The single implementation behind both [`compile_ftl_with_report`] and
/// the audited entry points — no drift between the sanitized and the plain
/// compilation sequence.
pub(crate) fn compile_ftl_ir(
    func: &Function,
    rt: &mut Runtime,
    arch: Architecture,
    scope: TxnScope,
    passes: PassConfig,
    mut auditor: Option<&mut Auditor>,
    ipa: Option<&ProgramSummaries>,
) -> Result<(IrFunc, CompileReport, bool), BuildError> {
    let _span = nomap_hostprof::span("compile:ftl");
    let built = {
        let _s = nomap_hostprof::span("build-ir");
        build_ir(func, rt, SpecLevel::Ftl)
    };
    let (mut ir, info) = built?;
    audit(&mut auditor, &ir, "post-build");
    let txn_aware = arch.uses_transactions() && scope != TxnScope::None;
    let mut report = CompileReport::default();
    if txn_aware {
        report.transactions_placed = place_transactions(&mut ir, &info, scope);
        report.checks_to_aborts = abort_mode_checks(&ir);
        audit(&mut auditor, &ir, "post-placement");
    }
    run_passes(&mut ir, passes, &mut auditor);
    if txn_aware {
        let mut changed = false;
        if arch.combines_bounds() {
            let snapshot = snapshot_for(&auditor, &ir);
            report.bounds_combined = combine_bounds_checks(&mut ir);
            if let (Some(before), Some(a)) = (&snapshot, auditor.as_deref_mut()) {
                a.validate_bounds(before, &ir);
            }
            audit(&mut auditor, &ir, "post-bounds");
            changed |= report.bounds_combined > 0;
        }
        if arch.removes_overflow() {
            report.overflow_removed = remove_overflow_checks(&mut ir);
            audit(&mut auditor, &ir, "post-sof");
            changed |= report.overflow_removed > 0;
        }
        if arch.strips_all_checks() {
            strip_all_checks(&mut ir);
            audit(&mut auditor, &ir, "post-strip");
            changed = true;
        }
        if changed {
            // One more cleanup round: dead compare chains behind removed
            // checks, newly hoistable code, etc.
            run_passes(&mut ir, passes, &mut auditor);
        }
    }
    report.prove = prove_stage(&mut ir, passes, &mut auditor, ipa);
    audit(&mut auditor, &ir, "final");
    Ok((ir, report, txn_aware))
}

/// Compiles the *transaction-aware callee* variant of `func`: every check
/// becomes an abort of the (caller's) enclosing transaction, unlocking the
/// full optimizer without placing transactions of its own. Only executed
/// while a transaction is active.
///
/// # Errors
///
/// Propagates IR construction failures.
pub fn compile_txn_callee(
    func: &Function,
    rt: &mut Runtime,
    arch: Architecture,
    passes: PassConfig,
    ipa: Option<&ProgramSummaries>,
) -> Result<CompiledFn, BuildError> {
    let (ir, _report) = compile_txn_callee_ir(func, rt, arch, passes, None, ipa)?;
    let mut code = lower(&ir, CodegenQuality::Ftl, Tier::Ftl, true);
    code.txn_callee = true;
    Ok(code)
}

/// Transaction-callee pipeline up to (but excluding) lowering, with
/// optional auditing. Auditors verify at entry depth 1: the whole body
/// runs under the caller's transaction.
pub(crate) fn compile_txn_callee_ir(
    func: &Function,
    rt: &mut Runtime,
    arch: Architecture,
    passes: PassConfig,
    mut auditor: Option<&mut Auditor>,
    ipa: Option<&ProgramSummaries>,
) -> Result<(IrFunc, CompileReport), BuildError> {
    let _span = nomap_hostprof::span("compile:callee");
    let built = {
        let _s = nomap_hostprof::span("build-ir");
        build_ir(func, rt, SpecLevel::Ftl)
    };
    let (mut ir, _info) = built?;
    abort_all_checks(&mut ir);
    audit(&mut auditor, &ir, "post-abort-conversion");
    run_passes(&mut ir, passes, &mut auditor);
    let mut report = CompileReport::default();
    let mut changed = false;
    if arch.combines_bounds() {
        let snapshot = snapshot_for(&auditor, &ir);
        report.bounds_combined = combine_bounds_checks(&mut ir);
        if let (Some(before), Some(a)) = (&snapshot, auditor.as_deref_mut()) {
            a.validate_bounds(before, &ir);
        }
        audit(&mut auditor, &ir, "post-bounds");
        changed |= report.bounds_combined > 0;
    }
    if arch.removes_overflow() {
        report.overflow_removed = remove_overflow_checks(&mut ir);
        audit(&mut auditor, &ir, "post-sof");
        changed |= report.overflow_removed > 0;
    }
    if arch.strips_all_checks() {
        strip_all_checks(&mut ir);
        audit(&mut auditor, &ir, "post-strip");
        changed = true;
    }
    if changed {
        run_passes(&mut ir, passes, &mut auditor);
    }
    report.prove = prove_stage(&mut ir, passes, &mut auditor, ipa);
    audit(&mut auditor, &ir, "final");
    Ok((ir, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomap_bytecode::compile_program;
    use nomap_machine::MachInst;

    fn sum_loop_program() -> nomap_bytecode::Program {
        compile_program(
            "function sum(a, n) {
                var s = 0;
                for (var i = 0; i < n; i++) { s = s + a[i]; }
                return s;
            }",
        )
        .unwrap()
    }

    /// With no profile data every site falls back to runtime calls, but the
    /// pipeline must still produce executable code.
    #[test]
    fn compiles_without_profiles() {
        let p = sum_loop_program();
        let f = p.function_named("sum").unwrap();
        let mut rt = Runtime::new();
        let dfg = compile_dfg(f, &mut rt).unwrap();
        assert!(dfg.code.iter().any(|i| matches!(i, MachInst::CallRt { .. })));
        let base = compile_ftl(f, &mut rt, Architecture::Base, TxnScope::None).unwrap();
        assert!(matches!(base.tier, Tier::Ftl));
        assert!(!base.txn_aware);
    }

    #[test]
    fn nomap_wraps_loops_in_transactions() {
        let p = sum_loop_program();
        let f = p.function_named("sum").unwrap();
        let mut rt = Runtime::new();
        let c = compile_ftl(f, &mut rt, Architecture::NoMapS, TxnScope::Nest).unwrap();
        assert!(c.txn_aware);
        let xbegins = c.code.iter().filter(|i| matches!(i, MachInst::XBegin { .. })).count();
        let xends = c.code.iter().filter(|i| matches!(i, MachInst::XEnd)).count();
        assert!(xbegins >= 1, "expected a transaction");
        assert!(xends >= 1);
    }

    #[test]
    fn tiled_scope_emits_mid_loop_commit() {
        let p = sum_loop_program();
        let f = p.function_named("sum").unwrap();
        let mut rt = Runtime::new();
        let c = compile_ftl(f, &mut rt, Architecture::NoMapS, TxnScope::InnerTiled(64)).unwrap();
        let xbegins = c.code.iter().filter(|i| matches!(i, MachInst::XBegin { .. })).count();
        assert!(xbegins >= 2, "tiled loop restarts its transaction");
    }
}
