//! Transaction placement and SMP → abort conversion (paper §IV-B, §V-C).
//!
//! Transactions wrap loops: by default the whole loop nest; after a
//! capacity abort, the innermost loop; then a strip-mined ("tiled") version
//! that commits and restarts every `tile` iterations; and if a
//! cache-overflowing transaction contains a call, the transaction is
//! removed altogether (the overflow is assumed to come from the callee).

use std::collections::HashMap;

use nomap_ir::analysis::{ensure_preheader, find_loops, loop_has_call, Dominators, Loop};
use nomap_ir::build::BuildInfo;
use nomap_ir::node::{Inst, InstKind, OsrState};
use nomap_ir::{BlockId, CheckMode, IrFunc, Ty, ValueId};

/// Default strip-mining chunk: iterations per transaction once tiling is
/// engaged.
pub const DEFAULT_TILE: u32 = 256;

/// How much code a transaction covers (the §V-C ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnScope {
    /// Whole loop nests (outermost loops).
    Nest,
    /// Innermost loops only.
    Inner,
    /// Innermost loops, committing every `0.0`-th iteration (strip-mined).
    InnerTiled(u32),
    /// No transactions (capacity kept overflowing, or a call was blamed).
    None,
}

/// Next step down the ladder after a capacity abort. `has_call` reports
/// whether the overflowing transaction contained a function call, in which
/// case the paper removes the transaction entirely.
pub fn next_scope(current: TxnScope, has_call: bool) -> TxnScope {
    if has_call {
        return TxnScope::None;
    }
    match current {
        TxnScope::Nest => TxnScope::Inner,
        TxnScope::Inner => TxnScope::InnerTiled(DEFAULT_TILE),
        TxnScope::InnerTiled(t) if t > 16 => TxnScope::InnerTiled(t / 4),
        _ => TxnScope::None,
    }
}

/// Places transactions around the selected loops of `f` and converts every
/// check inside them to `Abort` mode. Returns the number of transactions
/// placed. `info` supplies the loop-header OSR snapshots recorded by the IR
/// builder.
pub fn place_transactions(f: &mut IrFunc, info: &BuildInfo, scope: TxnScope) -> usize {
    let (tile, want_inner) = match scope {
        TxnScope::None => return 0,
        TxnScope::Nest => (None, false),
        TxnScope::Inner => (None, true),
        TxnScope::InnerTiled(t) => (Some(t), true),
    };
    let doms = Dominators::compute(f);
    let loops = find_loops(f, &doms);
    let selected: Vec<Loop> = loops
        .iter()
        .filter(|l| {
            let is_inner =
                !loops.iter().any(|l2| l2.header != l.header && l.body.contains(&l2.header));
            let is_outer =
                !loops.iter().any(|l2| l2.header != l.header && l2.body.contains(&l.header));
            if want_inner {
                is_inner
            } else {
                is_outer
            }
        })
        .cloned()
        .collect();
    let mut placed = 0;
    for l in &selected {
        if wrap_loop(f, info, l, tile) {
            placed += 1;
        }
    }
    placed
}

/// Converts *every* `Deopt`-mode check to an `Abort` (transaction-aware
/// callee compilation — the extension addressing the paper's `TMUnopt`
/// limitation, §VII-A/§VIII: functions called from inside a transaction
/// were "compiled without being aware that this code would eventually be
/// called from a transaction"). The resulting code is only valid while a
/// transaction is active; the VM selects it per call site.
pub fn abort_all_checks(f: &mut IrFunc) -> usize {
    let mut n = 0;
    for inst in &mut f.insts {
        if inst.check_mode() == Some(CheckMode::Deopt) {
            inst.set_check_mode(CheckMode::Abort);
            inst.osr = None;
            n += 1;
        }
    }
    n
}

/// The paper's `NoMap_BC` best case: strips every `Abort`-mode check.
pub fn strip_all_checks(f: &mut IrFunc) {
    for inst in &mut f.insts {
        if inst.check_mode() == Some(CheckMode::Abort) {
            inst.set_check_mode(CheckMode::Removed);
        }
    }
}

fn wrap_loop(f: &mut IrFunc, info: &BuildInfo, l: &Loop, tile: Option<u32>) -> bool {
    let Some(header_osr) = info.loop_osr.get(&l.header).cloned() else {
        return false;
    };
    let Some(preheader) = ensure_preheader(f, l) else { return false };

    // Fallback state at the preheader: header-phi values become their
    // entry-edge inputs; everything else already dominates the preheader.
    let entry_osr = remap_osr(f, l, &header_osr, preheader);
    let mut xbegin = Inst::new(InstKind::XBegin);
    xbegin.osr = Some(entry_osr);
    f.insert_before_terminator(preheader, xbegin);

    // Commit on every exit edge, and before any return from inside the
    // loop (early returns leave the transaction too).
    for (from, to) in l.exits.clone() {
        let mid = f.split_edge(from, to);
        f.insert_at(mid, 0, Inst::new(InstKind::XEnd));
    }
    for &b in &l.body {
        let term = f.terminator(b);
        if matches!(f.inst(term).kind, InstKind::Return { .. }) {
            f.insert_before_terminator(b, Inst::new(InstKind::XEnd));
        }
    }

    // SMPs inside the transaction become aborts (it is safe: FTL code has
    // no entry points inside loops — §IV-B).
    for &b in &l.body {
        let insts = f.blocks[b.0 as usize].insts.clone();
        for v in insts {
            let inst = f.inst_mut(v);
            if inst.check_mode() == Some(CheckMode::Deopt) {
                inst.set_check_mode(CheckMode::Abort);
                inst.osr = None;
            }
        }
    }

    if let Some(t) = tile {
        strip_mine(f, l, &header_osr, t, preheader);
    }
    let _ = loop_has_call(f, l); // documented signal for the vm's ladder
    true
}

/// Rewrites an OSR snapshot taken at the loop header into one valid on the
/// edge `edge_src → header`: header phis become their input along that
/// edge.
fn remap_osr(f: &IrFunc, l: &Loop, osr: &OsrState, edge_src: BlockId) -> OsrState {
    let preds = &f.blocks[l.header.0 as usize].preds;
    let pos = preds.iter().position(|&p| p == edge_src);
    let map = |v: ValueId| -> ValueId {
        if let InstKind::Phi { inputs, .. } = &f.inst(v).kind {
            if f.blocks[l.header.0 as usize].insts.contains(&v) {
                if let Some(pos) = pos {
                    return inputs[pos];
                }
            }
        }
        v
    };
    OsrState { bc: osr.bc, regs: osr.regs.iter().map(|s| s.map(map)).collect() }
}

/// Strip-mines the loop: a chunk counter commits and restarts the
/// transaction every `tile` iterations, bounding the write footprint
/// (paper §V-C "the innermost loop is tiled so the state fits in cache").
fn strip_mine(f: &mut IrFunc, l: &Loop, header_osr: &OsrState, tile: u32, preheader: BlockId) {
    // Chunk counter phi: 0 on entry, +1 per iteration, reset at commits.
    let zero = f.insert_before_terminator(preheader, Inst::new(InstKind::ConstI32(0)));
    // Build the phi after we know all inputs; placeholder inputs below.
    let header_preds = f.blocks[l.header.0 as usize].preds.clone();

    // Insert, on each latch edge, a conditional commit+restart block.
    let mut phi_inputs: HashMap<BlockId, ValueId> = HashMap::new();
    for &p in &header_preds {
        phi_inputs.insert(p, zero);
    }
    let phi = f.insert_at(l.header, 0, Inst::new(InstKind::Phi { inputs: vec![], ty: Ty::I32 }));

    for &latch in &l.latches {
        // Only unconditional back edges are strip-mined; a conditional
        // latch (do-while) keeps its unsplit transaction.
        let term = f.terminator(latch);
        if !matches!(f.inst(term).kind, InstKind::Jump { .. }) {
            continue;
        }
        // latch: ... ctr1 = ctr + 1 ; if ctr1 >= tile { XEnd; XBegin; } ...
        let one = f.insert_before_terminator(latch, Inst::new(InstKind::ConstI32(1)));
        let next = f.insert_before_terminator(
            latch,
            Inst::new(InstKind::CheckedAddI32 { a: phi, b: one, mode: CheckMode::Removed }),
        );
        let t = f.insert_before_terminator(latch, Inst::new(InstKind::ConstI32(tile as i32)));
        let cond = f.insert_before_terminator(
            latch,
            Inst::new(InstKind::ICmp { cond: nomap_machine::Cond::Ge, a: next, b: t }),
        );
        // Split the back edge; the mid block becomes the commit block.
        let commit = f.split_edge(latch, l.header);
        // Turn the latch terminator into a branch: commit or direct header.
        let term = f.terminator(latch);
        f.inst_mut(term).kind = InstKind::Branch { cond, then_b: commit, else_b: l.header };
        // Commit block: XEnd; XBegin(latch-edge fallback); jump to header.
        let latch_osr = remap_osr_for_latch(f, l, header_osr, latch);
        f.insert_at(commit, 0, Inst::new(InstKind::XEnd));
        let mut xb = Inst::new(InstKind::XBegin);
        xb.osr = Some(latch_osr);
        f.insert_at(commit, 1, Inst::new(InstKind::Nop)); // placeholder keeps order clear
        let xb_id = f.add_inst(xb);
        f.blocks[commit.0 as usize].insts.insert(1, xb_id);

        // Header gains `latch` (direct) and `commit` as predecessors.
        let preds = &mut f.blocks[l.header.0 as usize].preds;
        preds.push(latch); // direct edge (was rerouted to commit by split)
                           // Fix: split_edge replaced latch with commit in preds; we re-add
                           // latch for the direct (else) edge. Phi inputs must follow.
        let latch_pos_in_old = header_preds.iter().position(|&p| p == latch);
        let insts = f.blocks[l.header.0 as usize].insts.clone();
        for &pv in &insts {
            if pv == phi {
                continue;
            }
            if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(pv).kind {
                if let Some(pos) = latch_pos_in_old {
                    let dup = inputs[pos];
                    inputs.push(dup);
                }
            }
        }
        phi_inputs.insert(commit, zero);
        phi_inputs.insert(latch, next);
    }

    // Finalize the counter phi inputs in predecessor order.
    let preds_now = f.blocks[l.header.0 as usize].preds.clone();
    let inputs: Vec<ValueId> =
        preds_now.iter().map(|p| phi_inputs.get(p).copied().unwrap_or(zero)).collect();
    if let InstKind::Phi { inputs: slots, .. } = &mut f.inst_mut(phi).kind {
        *slots = inputs;
    }
}

fn remap_osr_for_latch(f: &IrFunc, l: &Loop, osr: &OsrState, latch: BlockId) -> OsrState {
    remap_osr(f, l, osr, latch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_steps() {
        assert_eq!(next_scope(TxnScope::Nest, false), TxnScope::Inner);
        assert_eq!(next_scope(TxnScope::Inner, false), TxnScope::InnerTiled(DEFAULT_TILE));
        assert_eq!(next_scope(TxnScope::InnerTiled(256), false), TxnScope::InnerTiled(64));
        assert_eq!(next_scope(TxnScope::InnerTiled(16), false), TxnScope::None);
        // A call inside the overflowing transaction removes it immediately.
        assert_eq!(next_scope(TxnScope::Nest, true), TxnScope::None);
        assert_eq!(next_scope(TxnScope::None, false), TxnScope::None);
    }
}
