//! Pass-sanitized ("audited") compilation: the normal tier pipelines with
//! the `nomap-verify` layers interleaved.
//!
//! The audited entry points run the exact transformation sequence of their
//! plain counterparts ([`crate::compile_ftl_with_report`] etc. — both
//! share one implementation), but:
//!
//! * the strict SSA verifier and the transaction-safety checker run after
//!   **every** stage (post-build, post-placement, after each optimizer
//!   pass, after each check-removal pass);
//! * `combine_bounds_checks` is translation-validated against the IR
//!   snapshot taken right before it ran;
//! * with [`AuditOptions::seed_scope`], the static write-footprint
//!   estimator predicts guaranteed HTM capacity aborts and re-compiles at
//!   the transaction scope the §V-C ladder would otherwise reach only
//!   after runtime aborts and recompiles;
//! * when any stage produces an **error** diagnostic, lowering is skipped
//!   and [`FtlAudit::code`] is `None` — broken IR never reaches the
//!   back end.

use nomap_bytecode::{Function, Program};
use nomap_ir::ipa::ProgramSummaries;
use nomap_ir::passes::PassConfig;
use nomap_ir::IrFunc;
use nomap_jit::CompiledFn;
use nomap_runtime::Runtime;
use nomap_verify::footprint::estimate_footprint_with;
use nomap_verify::{
    check_fail_warnings, has_errors, validate_bounds_combining, validate_check_elision,
    validate_summaries, verify_func, Diagnostic, ScopeAdvice,
};

use crate::config::Architecture;
use crate::pipeline::{compile_dfg_ir, compile_ftl_ir, compile_txn_callee_ir, CompileReport};
use crate::txn::TxnScope;

/// What the audited pipelines should do beyond plain compilation.
#[derive(Debug, Clone, Copy)]
pub struct AuditOptions {
    /// Run the verifier layers between every stage.
    pub verify: bool,
    /// Seed the initial transaction scope from the footprint estimate.
    pub seed_scope: bool,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions { verify: true, seed_scope: false }
    }
}

/// Outcome of one audited compilation.
#[derive(Debug)]
pub struct FtlAudit {
    /// The compiled function; `None` when an error diagnostic fired.
    pub code: Option<CompiledFn>,
    /// What the transaction passes did (for the final compile).
    pub report: CompileReport,
    /// Scope the caller asked for.
    pub scope_requested: TxnScope,
    /// Scope actually compiled (differs only under `seed_scope`).
    pub scope_used: TxnScope,
    /// The §V-C footprint estimate consulted under `seed_scope` (present
    /// only for a transaction-aware compile) — the static half of the
    /// abort-forensics calibration (`nomap aborts`).
    pub footprint: Option<nomap_verify::FootprintEstimate>,
    /// Verification stages that ran.
    pub stages: usize,
    /// Every finding, in stage order (warnings included).
    pub diagnostics: Vec<Diagnostic>,
}

impl FtlAudit {
    /// True when no *error* diagnostics fired (warnings allowed).
    pub fn clean(&self) -> bool {
        !has_errors(&self.diagnostics)
    }
}

/// The verification hooks threaded through the shared pipeline
/// implementation.
pub(crate) struct Auditor {
    verify: bool,
    sof_allowed: bool,
    entry_depth: u32,
    pub(crate) stages: usize,
    pub(crate) diags: Vec<Diagnostic>,
}

impl Auditor {
    pub(crate) fn new(verify: bool, sof_allowed: bool, entry_depth: u32) -> Self {
        Auditor { verify, sof_allowed, entry_depth, stages: 0, diags: Vec::new() }
    }

    /// Whether stage snapshots (for translation validation) are needed.
    pub(crate) fn verifying(&self) -> bool {
        self.verify
    }

    /// Runs SSA + transaction-safety verification on `ir`, tagging findings
    /// with `stage`.
    pub(crate) fn check(&mut self, ir: &IrFunc, stage: &str) {
        if !self.verify {
            return;
        }
        self.stages += 1;
        let mut ds = verify_func(ir, self.entry_depth, self.sof_allowed);
        for d in &mut ds {
            d.stage = stage.to_string();
        }
        self.diags.extend(ds);
    }

    /// Translation-validates one `combine_bounds_checks` application.
    pub(crate) fn validate_bounds(&mut self, before: &IrFunc, after: &IrFunc) {
        if !self.verify {
            return;
        }
        self.stages += 1;
        let mut ds = validate_bounds_combining(before, after);
        for d in &mut ds {
            d.stage = "bounds-tv".to_string();
        }
        self.diags.extend(ds);
    }

    /// Translation-validates one `prove_checks` application: every elided
    /// check must carry an independently re-derivable `ProvedSafe` witness.
    /// `ipa` must be the same summary table the pass consulted.
    pub(crate) fn validate_elision(
        &mut self,
        before: &IrFunc,
        after: &IrFunc,
        ipa: Option<&ProgramSummaries>,
    ) {
        if !self.verify {
            return;
        }
        self.stages += 1;
        let mut ds = validate_check_elision(before, after, ipa);
        for d in &mut ds {
            d.stage = "absint-tv".to_string();
        }
        self.diags.extend(ds);
    }

    /// Census warnings: reachable checks the range analysis proves *must*
    /// fail (legal but statically dead speculation).
    pub(crate) fn census(&mut self, ir: &IrFunc) {
        if !self.verify {
            return;
        }
        self.stages += 1;
        let mut ds = check_fail_warnings(ir);
        for d in &mut ds {
            d.stage = "census".to_string();
        }
        self.diags.extend(ds);
    }
}

/// Translation-validates a whole-program interprocedural summary table
/// (stage `ipa-tv`): every claimed return/precondition/effect/footprint
/// fact must be a post-fixpoint of the summary transfer function. Run this
/// *once per program* before any pipeline consumes the table — a table
/// that fails here must not be passed to `compile_*_with_report` or the
/// audited entry points.
pub fn audit_summaries(p: &Program, claimed: &ProgramSummaries) -> Vec<Diagnostic> {
    let mut ds = validate_summaries(p, claimed);
    for d in &mut ds {
        d.stage = "ipa-tv".to_string();
    }
    ds
}

/// Maps the estimator's advice onto a requested scope, never climbing the
/// ladder (a user-requested lower rung stays).
pub(crate) fn apply_advice(requested: TxnScope, advice: ScopeAdvice) -> TxnScope {
    match advice {
        ScopeAdvice::Keep => requested,
        ScopeAdvice::Disable => TxnScope::None,
        ScopeAdvice::Tile(t) => match requested {
            TxnScope::None => TxnScope::None,
            TxnScope::InnerTiled(cur) => TxnScope::InnerTiled(cur.min(t)),
            TxnScope::Nest | TxnScope::Inner => TxnScope::InnerTiled(t),
        },
    }
}

/// Audited [`crate::compile_ftl_with_report`].
///
/// # Errors
///
/// Propagates IR construction failures. Verifier findings are *not*
/// errors at this level — they are returned in [`FtlAudit::diagnostics`]
/// with [`FtlAudit::code`] set to `None`.
pub fn compile_ftl_audited(
    func: &Function,
    rt: &mut Runtime,
    arch: Architecture,
    scope: TxnScope,
    passes: PassConfig,
    opts: AuditOptions,
    ipa: Option<&ProgramSummaries>,
) -> Result<FtlAudit, nomap_ir::BuildError> {
    let sof_allowed = arch.htm_model().has_sof;
    let mut auditor = Auditor::new(opts.verify, sof_allowed, 0);
    let (ir, report, txn_aware) =
        compile_ftl_ir(func, rt, arch, scope, passes, Some(&mut auditor), ipa)?;

    let mut scope_used = scope;
    let mut final_ir = ir;
    let mut final_report = report;
    let mut final_txn_aware = txn_aware;
    let mut footprint = None;
    if opts.seed_scope && txn_aware {
        let mut est = estimate_footprint_with(&final_ir, &arch.htm_model(), ipa);
        for d in &mut est.diags {
            d.stage = "footprint".to_string();
        }
        auditor.diags.extend(est.diags.iter().cloned());
        let advised = apply_advice(scope, est.advice);
        if advised != scope {
            let (ir2, rep2, aware2) =
                compile_ftl_ir(func, rt, arch, advised, passes, Some(&mut auditor), ipa)?;
            final_ir = ir2;
            final_report = rep2;
            final_txn_aware = aware2;
            scope_used = advised;
        }
        footprint = Some(est);
    }

    let code = if has_errors(&auditor.diags) {
        None
    } else {
        Some(nomap_jit::lower(
            &final_ir,
            nomap_jit::CodegenQuality::Ftl,
            nomap_machine::Tier::Ftl,
            final_txn_aware,
        ))
    };
    Ok(FtlAudit {
        code,
        report: final_report,
        scope_requested: scope,
        scope_used,
        footprint,
        stages: auditor.stages,
        diagnostics: auditor.diags,
    })
}

/// Audited [`crate::compile_txn_callee`]: verification runs at transaction
/// entry depth 1 — the whole body executes under the caller's `XBegin`.
///
/// # Errors
///
/// Propagates IR construction failures.
pub fn compile_txn_callee_audited(
    func: &Function,
    rt: &mut Runtime,
    arch: Architecture,
    passes: PassConfig,
    opts: AuditOptions,
    ipa: Option<&ProgramSummaries>,
) -> Result<FtlAudit, nomap_ir::BuildError> {
    let mut auditor = Auditor::new(opts.verify, arch.htm_model().has_sof, 1);
    let (ir, report) = compile_txn_callee_ir(func, rt, arch, passes, Some(&mut auditor), ipa)?;
    let code = if has_errors(&auditor.diags) {
        None
    } else {
        let mut c =
            nomap_jit::lower(&ir, nomap_jit::CodegenQuality::Ftl, nomap_machine::Tier::Ftl, true);
        c.txn_callee = true;
        Some(c)
    };
    Ok(FtlAudit {
        code,
        report,
        scope_requested: TxnScope::None,
        scope_used: TxnScope::None,
        footprint: None,
        stages: auditor.stages,
        diagnostics: auditor.diags,
    })
}

/// Audited [`crate::compile_dfg`].
///
/// # Errors
///
/// Propagates IR construction failures.
pub fn compile_dfg_audited(
    func: &Function,
    rt: &mut Runtime,
    opts: AuditOptions,
    ipa: Option<&ProgramSummaries>,
) -> Result<FtlAudit, nomap_ir::BuildError> {
    let mut auditor = Auditor::new(opts.verify, true, 0);
    let (ir, report) = compile_dfg_ir(func, rt, Some(&mut auditor), ipa)?;
    let code = if has_errors(&auditor.diags) {
        None
    } else {
        Some(nomap_jit::lower(&ir, nomap_jit::CodegenQuality::Dfg, nomap_machine::Tier::Dfg, false))
    };
    Ok(FtlAudit {
        code,
        report,
        scope_requested: TxnScope::None,
        scope_used: TxnScope::None,
        footprint: None,
        stages: auditor.stages,
        diagnostics: auditor.diags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomap_bytecode::compile_program;

    fn sum_loop() -> nomap_bytecode::Program {
        compile_program(
            "function sum(a, n) {
                var s = 0;
                for (var i = 0; i < n; i++) { s = s + a[i]; }
                return s;
            }",
        )
        .unwrap()
    }

    #[test]
    fn audited_compile_is_clean_and_runs_every_stage() {
        let p = sum_loop();
        let f = p.function_named("sum").unwrap();
        let mut rt = Runtime::new();
        let audit = compile_ftl_audited(
            f,
            &mut rt,
            Architecture::NoMap,
            TxnScope::Nest,
            PassConfig::ftl(),
            AuditOptions::default(),
            None,
        )
        .unwrap();
        assert!(audit.clean(), "sanitizer found: {:?}", audit.diagnostics);
        assert!(audit.code.is_some());
        assert_eq!(audit.scope_used, TxnScope::Nest);
        // post-build, post-placement, 2×6 optimizer passes (×2 rounds),
        // bounds TV, post-bounds, post-sof, final — at the very least.
        assert!(audit.stages > 12, "only {} stages ran", audit.stages);

        // Plain and audited compilation must agree on what the passes did.
        let (_, plain) = crate::compile_ftl_with_report(
            f,
            &mut rt,
            Architecture::NoMap,
            TxnScope::Nest,
            PassConfig::ftl(),
            None,
        )
        .unwrap();
        assert_eq!(audit.report, plain);
    }

    #[test]
    fn audited_dfg_and_callee_are_clean() {
        let p = sum_loop();
        let f = p.function_named("sum").unwrap();
        let mut rt = Runtime::new();
        let dfg = compile_dfg_audited(f, &mut rt, AuditOptions::default(), None).unwrap();
        assert!(dfg.clean(), "{:?}", dfg.diagnostics);
        assert!(dfg.code.is_some());
        let callee = compile_txn_callee_audited(
            f,
            &mut rt,
            Architecture::NoMap,
            PassConfig::ftl(),
            AuditOptions::default(),
            None,
        )
        .unwrap();
        assert!(callee.clean(), "{:?}", callee.diagnostics);
        assert!(callee.code.as_ref().is_some_and(|c| c.txn_callee));
        assert!(callee.stages > 12);
    }

    #[test]
    fn advice_never_climbs_the_ladder() {
        use ScopeAdvice::*;
        assert_eq!(apply_advice(TxnScope::Nest, Keep), TxnScope::Nest);
        assert_eq!(apply_advice(TxnScope::Nest, Tile(64)), TxnScope::InnerTiled(64));
        assert_eq!(apply_advice(TxnScope::Inner, Tile(64)), TxnScope::InnerTiled(64));
        // Already tiled tighter than advised: stay tight.
        assert_eq!(apply_advice(TxnScope::InnerTiled(16), Tile(64)), TxnScope::InnerTiled(16));
        assert_eq!(apply_advice(TxnScope::InnerTiled(128), Tile(64)), TxnScope::InnerTiled(64));
        assert_eq!(apply_advice(TxnScope::None, Tile(64)), TxnScope::None);
        assert_eq!(apply_advice(TxnScope::Nest, Disable), TxnScope::None);
    }
}
