//! Overflow-check removal with the Sticky Overflow Flag (paper §IV-C2,
//! Fig. 7).
//!
//! Inside a transaction, per-operation overflow checks (`jo` after every
//! int32 add/sub/mul/neg) are deleted; the arithmetic still sets the SOF,
//! and the outermost `XEnd` aborts the transaction if the flag is set. The
//! rollback then re-executes the region in the Baseline tier with
//! double-precision semantics.

use nomap_ir::{CheckMode, IrFunc};

/// Converts every `Abort`-mode overflow check to `Sof` mode. Returns how
/// many checks were removed.
pub fn remove_overflow_checks(f: &mut IrFunc) -> usize {
    use nomap_ir::node::InstKind::*;
    let mut removed = 0;
    for inst in &mut f.insts {
        let is_overflow_check = matches!(
            inst.kind,
            CheckedAddI32 { .. }
                | CheckedSubI32 { .. }
                | CheckedMulI32 { .. }
                | CheckedNegI32 { .. }
        );
        if is_overflow_check && inst.check_mode() == Some(CheckMode::Abort) {
            inst.set_check_mode(CheckMode::Sof);
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomap_bytecode::FuncId;
    use nomap_ir::node::{Inst, InstKind};

    #[test]
    fn only_abort_mode_overflow_checks_convert() {
        let mut f = IrFunc::new(FuncId(0), "t", 0, 0);
        let a = f.append(f.entry, Inst::new(InstKind::ConstI32(1)));
        let in_txn = f.append(
            f.entry,
            Inst::new(InstKind::CheckedAddI32 { a, b: a, mode: CheckMode::Abort }),
        );
        let outside = f.append(
            f.entry,
            Inst::new(InstKind::CheckedAddI32 { a, b: a, mode: CheckMode::Deopt }),
        );
        let boxed = f.append(f.entry, Inst::new(InstKind::BoxI32(in_txn)));
        f.append(f.entry, Inst::new(InstKind::Return { v: boxed }));
        let n = remove_overflow_checks(&mut f);
        assert_eq!(n, 1);
        assert_eq!(f.inst(in_txn).check_mode(), Some(CheckMode::Sof));
        assert_eq!(f.inst(outside).check_mode(), Some(CheckMode::Deopt));
    }

    #[test]
    fn type_checks_are_untouched() {
        let mut f = IrFunc::new(FuncId(0), "t", 0, 0);
        let c = f.append(f.entry, Inst::new(InstKind::Const(nomap_runtime::Value::new_int32(1))));
        let chk =
            f.append(f.entry, Inst::new(InstKind::CheckInt32 { v: c, mode: CheckMode::Abort }));
        let boxed = f.append(f.entry, Inst::new(InstKind::BoxI32(chk)));
        f.append(f.entry, Inst::new(InstKind::Return { v: boxed }));
        assert_eq!(remove_overflow_checks(&mut f), 0);
        assert_eq!(f.inst(chk).check_mode(), Some(CheckMode::Abort));
    }
}
