//! Bounds-check combining (paper §IV-C1, Fig. 6).
//!
//! Inside a transaction, when a failure is detected no longer matters —
//! only that the transaction eventually rolls back. So an in-loop bounds
//! check on a *monotonic* induction variable can be replaced by a single
//! check against the extreme index: sunk below the loop for increasing
//! variables, hoisted above it for decreasing ones. Early loop exits are
//! handled for free because the sunk check tests the induction variable's
//! value at the actual exit.
//!
//! Spurious aborts (e.g. a zero-trip loop whose initial index exceeds the
//! array length) are *safe*: the transaction rolls back and the Baseline
//! tier re-executes with full JavaScript semantics.

use nomap_ir::analysis::{defined_outside, ensure_preheader, find_loops, Dominators};
use nomap_ir::node::{Inst, InstKind};
use nomap_ir::scev::induction_vars;
use nomap_ir::{CheckMode, IrFunc, ValueId};
use nomap_machine::{CheckKind, Cond};

/// Runs the pass; returns how many in-loop bounds checks were combined
/// away.
pub fn combine_bounds_checks(f: &mut IrFunc) -> usize {
    combine_impl(f, true)
}

/// Deliberately broken variant for mutation-testing the translation
/// validator: skips the proof that the checked index is a monotonic
/// induction variable and combines the check against an arbitrary one.
#[cfg(test)]
pub(crate) fn combine_bounds_checks_unsound(f: &mut IrFunc) -> usize {
    combine_impl(f, false)
}

fn combine_impl(f: &mut IrFunc, require_monotonic: bool) -> usize {
    let doms = Dominators::compute(f);
    let loops = find_loops(f, &doms);
    let mut removed = 0;
    for l in &loops {
        let ivs = induction_vars(f, l);
        if ivs.is_empty() {
            continue;
        }
        let Some(preheader) = ensure_preheader(f, l) else { continue };
        // Collect combinable guards: Guard(Bounds, ICmp(AboveEq, iv, len))
        // in Abort mode with loop-invariant `len`.
        let mut combined: Vec<(ValueId, ValueId, bool)> = Vec::new(); // (iv_phi, len, increasing)
        for &b in &l.body.clone() {
            let insts = f.blocks[b.0 as usize].insts.clone();
            for v in insts {
                let InstKind::Guard { kind: CheckKind::Bounds, cond, mode: CheckMode::Abort } =
                    f.inst(v).kind
                else {
                    continue;
                };
                let InstKind::ICmp { cond: Cond::AboveEq, a: idx, b: len } = f.inst(cond).kind
                else {
                    continue;
                };
                if !defined_outside(f, l, len) {
                    continue;
                }
                // THE soundness proof of §IV-C1: the checked index must be
                // a monotonic induction variable. The mutation-test variant
                // skips it and pretends the first IV was checked.
                let iv = match ivs.iter().find(|iv| iv.phi == idx) {
                    Some(iv) => iv,
                    None if !require_monotonic => &ivs[0],
                    None => continue,
                };
                // Remove the in-loop check; record one combined check per
                // (iv, len, direction).
                f.inst_mut(v).kind = InstKind::Nop;
                removed += 1;
                let entry = (iv.phi, len, iv.increasing());
                if !combined.contains(&entry) {
                    combined.push(entry);
                }
            }
        }
        let sunk: Vec<(ValueId, ValueId)> =
            combined.iter().filter(|(_, _, inc)| *inc).map(|&(phi, len, _)| (phi, len)).collect();
        // Sink below the loop: split each exit edge ONCE and emit every
        // combined check into the same landing block (indices used are
        // strictly below the exit value for step ≥ 1).
        if !sunk.is_empty() {
            for (from, to) in l.exits.clone() {
                let mid = f.split_edge(from, to);
                let mut pos = 0;
                for &(phi, len) in &sunk {
                    let cond = f.insert_at(
                        mid,
                        pos,
                        Inst::new(InstKind::ICmp { cond: Cond::Gt, a: phi, b: len }),
                    );
                    f.insert_at(
                        mid,
                        pos + 1,
                        Inst::new(InstKind::Guard {
                            kind: CheckKind::Bounds,
                            cond,
                            mode: CheckMode::Abort,
                        }),
                    );
                    pos += 2;
                }
            }
        }
        // Hoist decreasing variables above the loop: the first index is the
        // largest.
        for (phi, len, _) in combined.iter().filter(|(_, _, inc)| !*inc) {
            let ivs = induction_vars(f, l);
            let Some(iv) = ivs.iter().find(|iv| iv.phi == *phi) else { continue };
            let init = iv.init;
            let cond = f.insert_before_terminator(
                preheader,
                Inst::new(InstKind::ICmp { cond: Cond::AboveEq, a: init, b: *len }),
            );
            f.insert_before_terminator(
                preheader,
                Inst::new(InstKind::Guard {
                    kind: CheckKind::Bounds,
                    cond,
                    mode: CheckMode::Abort,
                }),
            );
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomap_bytecode::FuncId;
    use nomap_ir::node::Ty;

    /// for (i = 0; i < n; i++) { guard(i >=u len); use a[i] }
    fn loop_with_bounds_check(step: i32) -> IrFunc {
        let mut f = IrFunc::new(FuncId(0), "t", 0, 0);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let init = f.append(f.entry, Inst::new(InstKind::ConstI32(if step > 0 { 0 } else { 99 })));
        let n = f.append(f.entry, Inst::new(InstKind::ConstI32(100)));
        let len = f.append(f.entry, Inst::new(InstKind::ConstI32(100)));
        f.append(f.entry, Inst::new(InstKind::Jump { target: header }));
        let phi = f.append(header, Inst::new(InstKind::Phi { inputs: vec![init], ty: Ty::I32 }));
        let cmp = f.append(header, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: phi, b: n }));
        f.append(header, Inst::new(InstKind::Branch { cond: cmp, then_b: body, else_b: exit }));
        let oob = f.append(body, Inst::new(InstKind::ICmp { cond: Cond::AboveEq, a: phi, b: len }));
        f.append(
            body,
            Inst::new(InstKind::Guard {
                kind: CheckKind::Bounds,
                cond: oob,
                mode: CheckMode::Abort,
            }),
        );
        let stepc = f.append(body, Inst::new(InstKind::ConstI32(step.abs())));
        let next = if step > 0 {
            f.append(
                body,
                Inst::new(InstKind::CheckedAddI32 { a: phi, b: stepc, mode: CheckMode::Abort }),
            )
        } else {
            f.append(
                body,
                Inst::new(InstKind::CheckedSubI32 { a: phi, b: stepc, mode: CheckMode::Abort }),
            )
        };
        f.append(body, Inst::new(InstKind::Jump { target: header }));
        if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
            inputs.push(next);
        }
        let u = f.append(exit, Inst::new(InstKind::Const(nomap_runtime::Value::UNDEFINED)));
        f.append(exit, Inst::new(InstKind::Return { v: u }));
        f.compute_preds();
        f
    }

    fn count_bounds_guards(f: &IrFunc, in_loop_body: bool) -> usize {
        let doms = Dominators::compute(f);
        let loops = find_loops(f, &doms);
        f.blocks
            .iter()
            .enumerate()
            .filter(|(bi, _)| {
                let b = nomap_ir::BlockId(*bi as u32);
                loops.iter().any(|l| l.contains(b)) == in_loop_body
            })
            .flat_map(|(_, b)| &b.insts)
            .filter(|&&v| matches!(f.inst(v).kind, InstKind::Guard { kind: CheckKind::Bounds, .. }))
            .count()
    }

    #[test]
    fn increasing_check_is_sunk() {
        let mut f = loop_with_bounds_check(1);
        assert_eq!(count_bounds_guards(&f, true), 1);
        let removed = combine_bounds_checks(&mut f);
        assert_eq!(removed, 1);
        assert_eq!(count_bounds_guards(&f, true), 0);
        assert_eq!(count_bounds_guards(&f, false), 1); // sunk to the exit
        assert_eq!(f.verify(), Ok(()));
    }

    #[test]
    fn decreasing_check_is_hoisted() {
        let mut f = loop_with_bounds_check(-1);
        let removed = combine_bounds_checks(&mut f);
        assert_eq!(removed, 1);
        assert_eq!(count_bounds_guards(&f, true), 0);
        assert_eq!(count_bounds_guards(&f, false), 1); // hoisted to preheader
        assert_eq!(f.verify(), Ok(()));
    }

    /// Mutation test for the translation validator: weaken the pass by
    /// dropping the §IV-C1 monotonicity proof and the validator must
    /// reject the output, while the sound pass removes nothing on the
    /// same input.
    #[test]
    fn translation_validator_catches_unsound_combining() {
        // Loop with a genuine IV `i` and a second, non-affine phi `j`
        // (j += i each iteration); the bounds guard tests `j`.
        let mut f = IrFunc::new(FuncId(0), "t", 0, 0);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let zero = f.append(f.entry, Inst::new(InstKind::ConstI32(0)));
        let n = f.append(f.entry, Inst::new(InstKind::ConstI32(100)));
        let len = f.append(f.entry, Inst::new(InstKind::ConstI32(100)));
        f.append(f.entry, Inst::new(InstKind::Jump { target: header }));
        let i = f.append(header, Inst::new(InstKind::Phi { inputs: vec![zero], ty: Ty::I32 }));
        let j = f.append(header, Inst::new(InstKind::Phi { inputs: vec![zero], ty: Ty::I32 }));
        let cmp = f.append(header, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: i, b: n }));
        f.append(header, Inst::new(InstKind::Branch { cond: cmp, then_b: body, else_b: exit }));
        let oob = f.append(body, Inst::new(InstKind::ICmp { cond: Cond::AboveEq, a: j, b: len }));
        f.append(
            body,
            Inst::new(InstKind::Guard {
                kind: CheckKind::Bounds,
                cond: oob,
                mode: CheckMode::Abort,
            }),
        );
        let one = f.append(body, Inst::new(InstKind::ConstI32(1)));
        let i2 = f.append(
            body,
            Inst::new(InstKind::CheckedAddI32 { a: i, b: one, mode: CheckMode::Abort }),
        );
        let j2 = f.append(
            body,
            Inst::new(InstKind::CheckedAddI32 { a: j, b: i, mode: CheckMode::Abort }),
        );
        f.append(body, Inst::new(InstKind::Jump { target: header }));
        if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(i).kind {
            inputs.push(i2);
        }
        if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(j).kind {
            inputs.push(j2);
        }
        let u = f.append(exit, Inst::new(InstKind::Const(nomap_runtime::Value::UNDEFINED)));
        f.append(exit, Inst::new(InstKind::Return { v: u }));
        f.compute_preds();

        // The sound pass proves nothing about `j` and leaves the check alone.
        let mut strict = f.clone();
        assert_eq!(combine_bounds_checks(&mut strict), 0);
        assert!(nomap_verify::validate_bounds_combining(&f, &strict).is_empty());

        // The weakened pass deletes it; the validator must refuse the result.
        let mut mutated = f.clone();
        assert_eq!(combine_bounds_checks_unsound(&mut mutated), 1);
        let diags = nomap_verify::validate_bounds_combining(&f, &mutated);
        assert!(
            diags.iter().any(|d| d.code == nomap_verify::DiagCode::BoundsNotInduction),
            "validator must flag the deleted non-induction check: {diags:?}"
        );
    }

    #[test]
    fn deopt_mode_checks_are_left_alone() {
        let mut f = loop_with_bounds_check(1);
        // Flip the guard to Deopt mode — outside a transaction the pass
        // must not touch it.
        for i in 0..f.insts.len() {
            let inst = f.inst_mut(nomap_ir::ValueId(i as u32));
            if matches!(inst.kind, InstKind::Guard { .. }) {
                inst.set_check_mode(CheckMode::Deopt);
            }
        }
        assert_eq!(combine_bounds_checks(&mut f), 0);
        assert_eq!(count_bounds_guards(&f, true), 1);
    }
}
