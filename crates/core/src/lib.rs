//! **NoMap** — the paper's contribution: wrap performance-critical FTL code
//! regions in hardware transactions, replace the Stack Map Points inside
//! them with transaction aborts, and run two new check optimizations that
//! only transactions make legal:
//!
//! * bounds-check combining over monotonic induction variables (§IV-C1),
//! * overflow-check removal via the Sticky Overflow Flag (§IV-C2).
//!
//! The crate also defines the six evaluated architectures (Table II) and
//! the §V-C transaction-scope ladder used when capacity aborts strike.

mod audit;
mod bounds;
mod config;
mod pipeline;
mod sof;
mod txn;

pub use audit::{
    audit_summaries, compile_dfg_audited, compile_ftl_audited, compile_txn_callee_audited,
    AuditOptions, FtlAudit,
};
pub use bounds::combine_bounds_checks;
pub use config::Architecture;
pub use pipeline::{
    compile_dfg, compile_dfg_with_report, compile_ftl, compile_ftl_with, compile_ftl_with_report,
    compile_txn_callee, CompileReport,
};
pub use sof::remove_overflow_checks;
pub use txn::{
    abort_all_checks, next_scope, place_transactions, strip_all_checks, TxnScope, DEFAULT_TILE,
};
