//! `nomap ipa` — the interprocedural summary report and the
//! interprocedural-vs-intraprocedural verdict delta census.
//!
//! The report has three sections, all derived deterministically from the
//! program (summaries are bytecode-level and profile-independent; the
//! verdict census compiles under warmed profiles exactly like
//! `nomap prove` does):
//!
//! 1. the **call graph**: per function its direct callees, whether it is
//!    a host-reachable root (top preconditions), and whether it sits in a
//!    cyclic SCC;
//! 2. the **summary table**: return abstraction, argument preconditions,
//!    heap-effect class and clobber bit, as claimed by
//!    `nomap_ir::ipa::summarize` and validated by `ipa-tv`;
//! 3. the **verdict delta**: every function compiled twice per tier —
//!    once intraprocedurally, once under the summary table — with the
//!    elided/unknown check tallies and the §V-C seeded transaction scope
//!    side by side. The delta is the whole point of the analysis: checks
//!    that move from `unknown` to `elided`, and loops whose ladder seed
//!    climbs from "no transactions" to a strip-mined tile because their
//!    callees are provably write-bounded.

use nomap_core::{
    compile_dfg_with_report, compile_ftl_audited, compile_ftl_with_report, Architecture,
    AuditOptions, TxnScope,
};
use nomap_ir::passes::PassConfig;
use nomap_trace::{obj, JsonValue};

use crate::error::VmError;
use crate::vm::{Vm, VmConfig};

/// One function's row: call-graph facts, claimed summary, verdict delta.
#[derive(Debug, Clone)]
pub struct IpaFnReport {
    /// Function id (the VM's function table index).
    pub func: u32,
    /// Function name (`«main»` for the top level).
    pub name: String,
    /// Host-reachable root (top preconditions).
    pub root: bool,
    /// Member of a cyclic SCC (self-recursive or mutually recursive).
    pub recursive: bool,
    /// Direct callees (function ids, sorted).
    pub callees: Vec<u32>,
    /// Claimed return abstraction (display form).
    pub ret: String,
    /// Claimed argument preconditions (display form, one per formal).
    pub params: Vec<String>,
    /// Claimed heap-effect class (kebab-case).
    pub effect: String,
    /// May overwrite pre-existing reachable guest memory.
    pub clobbers: bool,
    /// Checks elided without / with the summary table (DFG + FTL).
    pub elided_intra: u32,
    /// See [`IpaFnReport::elided_intra`].
    pub elided_ipa: u32,
    /// Undecided checks without / with the summary table (DFG + FTL).
    pub unknown_intra: u32,
    /// See [`IpaFnReport::unknown_intra`].
    pub unknown_ipa: u32,
    /// §V-C scope the footprint estimator seeds without the table.
    pub scope_intra: String,
    /// §V-C scope seeded under the table (callee-inclusive footprints).
    pub scope_ipa: String,
}

impl IpaFnReport {
    /// One stable text line for the summary-table section.
    pub fn render_summary(&self) -> String {
        let callees: Vec<String> = self.callees.iter().map(|c| format!("f{c}")).collect();
        format!(
            "f{}:{} root={} recursive={} callees=[{}] ret={} params=[{}] effect={} clobbers={}",
            self.func,
            self.name,
            self.root,
            self.recursive,
            callees.join(","),
            self.ret,
            self.params.join(", "),
            self.effect,
            self.clobbers
        )
    }

    /// One stable text line for the verdict-delta section.
    pub fn render_delta(&self) -> String {
        format!(
            "f{}:{} elided {}->{} unknown {}->{} scope {}->{}",
            self.func,
            self.name,
            self.elided_intra,
            self.elided_ipa,
            self.unknown_intra,
            self.unknown_ipa,
            self.scope_intra,
            self.scope_ipa
        )
    }

    /// JSON object mirroring both render forms.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("func", self.func.into()),
            ("name", self.name.as_str().into()),
            ("root", self.root.into()),
            ("recursive", self.recursive.into()),
            (
                "callees",
                JsonValue::Array(self.callees.iter().map(|&c| JsonValue::from(c)).collect()),
            ),
            ("ret", self.ret.as_str().into()),
            ("params", JsonValue::Array(self.params.iter().map(|p| p.as_str().into()).collect())),
            ("effect", self.effect.as_str().into()),
            ("clobbers", self.clobbers.into()),
            ("elided_intra", self.elided_intra.into()),
            ("elided_ipa", self.elided_ipa.into()),
            ("unknown_intra", self.unknown_intra.into()),
            ("unknown_ipa", self.unknown_ipa.into()),
            ("scope_intra", self.scope_intra.as_str().into()),
            ("scope_ipa", self.scope_ipa.as_str().into()),
        ])
    }
}

/// The whole `nomap ipa` report for one program.
#[derive(Debug, Default)]
pub struct IpaReport {
    /// One row per function, in function-id order.
    pub rows: Vec<IpaFnReport>,
}

impl IpaReport {
    /// Total checks elided without the summary table.
    pub fn total_elided_intra(&self) -> u32 {
        self.rows.iter().map(|r| r.elided_intra).sum()
    }

    /// Total checks elided under the summary table.
    pub fn total_elided_ipa(&self) -> u32 {
        self.rows.iter().map(|r| r.elided_ipa).sum()
    }

    /// Total undecided checks without the summary table.
    pub fn total_unknown_intra(&self) -> u32 {
        self.rows.iter().map(|r| r.unknown_intra).sum()
    }

    /// Total undecided checks under the summary table.
    pub fn total_unknown_ipa(&self) -> u32 {
        self.rows.iter().map(|r| r.unknown_ipa).sum()
    }

    /// Functions whose §V-C seed changed under callee-inclusive
    /// footprints (typically `None` → a strip-mined tile).
    pub fn scopes_changed(&self) -> usize {
        self.rows.iter().filter(|r| r.scope_intra != r.scope_ipa).count()
    }

    /// One-line totals (the corpus census line body).
    pub fn summary(&self) -> String {
        format!(
            "elided {}->{} unknown {}->{} scopes_reseeded={}",
            self.total_elided_intra(),
            self.total_elided_ipa(),
            self.total_unknown_intra(),
            self.total_unknown_ipa(),
            self.scopes_changed()
        )
    }

    /// The full stable text report.
    pub fn render(&self) -> String {
        let mut out = String::from("== summaries ==\n");
        for r in &self.rows {
            out.push_str(&r.render_summary());
            out.push('\n');
        }
        out.push_str("== verdict delta (intra -> ipa) ==\n");
        for r in &self.rows {
            out.push_str(&r.render_delta());
            out.push('\n');
        }
        out.push_str(&format!("ipa: {} function(s): {}\n", self.rows.len(), self.summary()));
        out
    }

    /// Whole-report JSON (the CI census artifact).
    pub fn to_json(&self, arch: Architecture) -> JsonValue {
        obj(vec![
            ("arch", arch.name().into()),
            ("functions", self.rows.len().into()),
            ("elided_intra", self.total_elided_intra().into()),
            ("elided_ipa", self.total_elided_ipa().into()),
            ("unknown_intra", self.total_unknown_intra().into()),
            ("unknown_ipa", self.total_unknown_ipa().into()),
            ("scopes_reseeded", self.scopes_changed().into()),
            ("rows", JsonValue::Array(self.rows.iter().map(IpaFnReport::to_json).collect())),
        ])
    }
}

/// Builds the report for `source` under `arch`.
///
/// Like `nomap prove`, the guest's top level runs once and `run()` (when
/// defined) is called `warmup` times first, so the recompiled IR carries
/// the same speculations a real run would JIT. Guest runtime errors
/// during warmup do not fail the report.
///
/// # Errors
///
/// Returns [`VmError::Compile`] when `source` does not parse, or
/// [`VmError::Jit`] when IR construction fails during recompilation.
pub fn ipa_source(source: &str, arch: Architecture, warmup: u32) -> Result<IpaReport, VmError> {
    let mut config = VmConfig::new(arch);
    config.sanitize = false;
    config.seed_scope = false;
    let mut vm = Vm::with_config(source, config)?;
    let _ = vm.run_main();
    if vm.program.function_ids.contains_key("run") {
        for _ in 0..warmup {
            if vm.call("run", &[]).is_err() {
                break;
            }
        }
    }

    let ipa = vm.summaries().clone();
    let scope = if arch.uses_transactions() { TxnScope::Nest } else { TxnScope::None };
    let passes = PassConfig::ftl();
    // Footprint seeding without the verifier gauntlet: we only want
    // `scope_used`, not a sanitizer run per compile.
    let seed_opts = AuditOptions { verify: false, seed_scope: true };

    let mut report = IpaReport::default();
    for id in 0..vm.funcs.len() {
        let func = vm.funcs[id].clone();
        let fid = nomap_bytecode::FuncId(id as u32);
        let sum = ipa.get(fid).expect("every function is summarized");

        let (_, dfg_intra) = compile_dfg_with_report(&func, &mut vm.rt, None)?;
        let (_, dfg_ipa) = compile_dfg_with_report(&func, &mut vm.rt, Some(&ipa))?;
        let (_, ftl_intra) = compile_ftl_with_report(&func, &mut vm.rt, arch, scope, passes, None)?;
        let (_, ftl_ipa) =
            compile_ftl_with_report(&func, &mut vm.rt, arch, scope, passes, Some(&ipa))?;
        let seeded_intra =
            compile_ftl_audited(&func, &mut vm.rt, arch, scope, passes, seed_opts, None)?;
        let seeded_ipa =
            compile_ftl_audited(&func, &mut vm.rt, arch, scope, passes, seed_opts, Some(&ipa))?;

        report.rows.push(IpaFnReport {
            func: id as u32,
            name: func.name.clone(),
            root: ipa.roots.contains(&fid),
            recursive: ipa.graph.is_cyclic(ipa.graph.scc_of[&fid]),
            callees: sum.callees.iter().map(|c| c.0).collect(),
            ret: sum.ret.to_string(),
            params: sum.params.iter().map(ToString::to_string).collect(),
            effect: sum.effect.describe(),
            clobbers: sum.clobbers,
            elided_intra: dfg_intra.prove.total_elided() + ftl_intra.prove.total_elided(),
            elided_ipa: dfg_ipa.prove.total_elided() + ftl_ipa.prove.total_elided(),
            unknown_intra: dfg_intra.prove.total_unknown() + ftl_intra.prove.total_unknown(),
            unknown_ipa: dfg_ipa.prove.total_unknown() + ftl_ipa.prove.total_unknown(),
            scope_intra: format!("{:?}", seeded_intra.scope_used),
            scope_ipa: format!("{:?}", seeded_ipa.scope_used),
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded helper called from a hot loop: intraprocedurally the
    /// callee return is opaque and the overflowing loop would disable
    /// transactions; under summaries the return is a known constant range
    /// and the callee is pure.
    const SRC: &str = "
        function inc(x) { return x + 1; }
        function sum(n) {
            var s = 0;
            for (var i = 0; i < n; i++) { s = inc(s); }
            return s;
        }
        function run() { return sum(100); }
    ";

    #[test]
    fn delta_census_reports_every_function() {
        let report = ipa_source(SRC, Architecture::NoMap, 150).unwrap();
        assert!(report.rows.len() >= 4, "main + inc + sum + run");
        // Rows are in function-id order and the text form is stable.
        let text = report.render();
        assert!(text.starts_with("== summaries =="));
        assert!(text.contains(":inc"), "{text}");
        let inc = report.rows.iter().find(|r| r.name == "inc").unwrap();
        assert!(!inc.root, "inc is only called in-program");
        assert!(!inc.recursive);
        // Boxing/allocation modeling may charge a few fresh lines, but a
        // straight-line arithmetic helper must never be write-unbounded.
        assert_ne!(inc.effect, "writes-unbounded", "{}", inc.render_summary());
        // The IPA pass must never do worse than the intraprocedural one.
        for r in &report.rows {
            assert!(r.elided_ipa >= r.elided_intra, "{}", r.render_delta());
            assert!(r.unknown_ipa <= r.unknown_intra, "{}", r.render_delta());
        }
    }

    #[test]
    fn report_serializes_with_stable_keys() {
        let report = ipa_source(SRC, Architecture::NoMap, 50).unwrap();
        let json = report.to_json(Architecture::NoMap).render();
        for key in
            ["\"arch\"", "\"functions\"", "\"elided_ipa\"", "\"scopes_reseeded\"", "\"rows\""]
        {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(report.summary().starts_with("elided "));
    }
}
