//! VM-level errors and internal control flow.

use std::error::Error;
use std::fmt;

use nomap_bytecode::CompileError;
use nomap_ir::BuildError;
use nomap_runtime::RuntimeError;

/// Errors surfaced to VM users.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Front-end / bytecode compilation failure.
    Compile(String),
    /// Runtime semantic error (JavaScript would throw).
    Runtime(RuntimeError),
    /// JIT compilation failure.
    Jit(String),
    /// The pass sanitizer found broken IR during an audited compilation
    /// (see `VmConfig::sanitize`); the offending code was not installed.
    Verifier(String),
    /// Guest recursion exceeded the VM's limit.
    StackOverflow,
    /// A named function was not found.
    UnknownFunction(String),
    /// A harness-imposed cycle budget was exhausted (the fleet's shard
    /// timeout: cycles are the simulator's clock, so a deterministic
    /// "timeout" is a cycle cap, not wall time).
    CycleBudget {
        /// Simulated cycles spent when the budget tripped.
        spent: u64,
        /// The configured cap.
        budget: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Compile(m) => write!(f, "compile error: {m}"),
            VmError::Runtime(e) => write!(f, "{e}"),
            VmError::Jit(m) => write!(f, "jit error: {m}"),
            VmError::Verifier(m) => write!(f, "verifier error: {m}"),
            VmError::StackOverflow => write!(f, "guest stack overflow"),
            VmError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            VmError::CycleBudget { spent, budget } => {
                write!(f, "cycle budget exhausted: {spent} cycles spent, budget {budget}")
            }
        }
    }
}

impl Error for VmError {}

impl From<RuntimeError> for VmError {
    fn from(e: RuntimeError) -> Self {
        VmError::Runtime(e)
    }
}

impl From<CompileError> for VmError {
    fn from(e: CompileError) -> Self {
        VmError::Compile(e.to_string())
    }
}

impl From<BuildError> for VmError {
    fn from(e: BuildError) -> Self {
        VmError::Jit(e.to_string())
    }
}

/// Internal control flow: either a real error or a transactional abort
/// unwinding to the frame that owns the transaction.
#[derive(Debug)]
pub(crate) enum Flow {
    Error(VmError),
    /// Unwind to the transaction owner (recorded in `Vm::tx_fallback`).
    TxAbort,
}

impl From<VmError> for Flow {
    fn from(e: VmError) -> Self {
        Flow::Error(e)
    }
}

impl From<RuntimeError> for Flow {
    fn from(e: RuntimeError) -> Self {
        Flow::Error(VmError::Runtime(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = VmError::UnknownFunction("f".into());
        assert!(e.to_string().contains("`f`"));
        let e: VmError = RuntimeError::OutOfMemory.into();
        assert!(matches!(e, VmError::Runtime(_)));
    }
}
