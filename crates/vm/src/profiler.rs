//! The VM-side cycle-attribution profiler state.
//!
//! [`nomap_profile::ProfileData`] is the passive data model; this module
//! holds the live context the executor needs to *fill* it: which guest
//! frame is running (so runtime-helper and memory cycles have an owner) and
//! whether the current frame is a Baseline re-execution after a
//! transactional abort or a deoptimization (so replay cycles land in the
//! `txn-retry-ladder` / `deopt-replay` regions instead of `main`).
//!
//! The profiler is optional (`Vm::enable_profiling`) and observation-only:
//! with it disabled every charge site degenerates to the exact pre-existing
//! `ExecStats` update, and with it enabled neither `ExecStats` nor program
//! results change — only the ledger fills in. The VM routes every cycle
//! through one choke point (`Vm::add_cycles`), which is what makes the
//! conservation invariant (ledger total == `ExecStats::total_cycles()`)
//! structural rather than aspirational.

use nomap_machine::{RegionKey, RegionKind, Tier};
use nomap_profile::ProfileData;

/// Why the current frame is executing: straight-line progress, the §V-C
/// retry ladder (Baseline re-execution after a transactional abort), or a
/// deoptimization replay (Baseline re-execution after an OSR exit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayMode {
    /// Ordinary forward execution.
    Normal,
    /// Re-executing in Baseline after a transactional abort.
    TxnRetry,
    /// Re-executing in Baseline after a deoptimization.
    DeoptReplay,
}

/// Live profiling state owned by the VM when profiling is enabled.
#[derive(Debug)]
pub(crate) struct Profiler {
    /// The profile being collected.
    pub data: ProfileData,
    /// Stack of (function id, tier) for the guest frames currently
    /// executing; the top owns runtime-helper and memory cycles.
    pub ctx: Vec<(u32, Tier)>,
    /// Replay mode of the currently executing frame. Callees inherit it:
    /// work done on behalf of a retry/replay is part of its cost.
    pub mode: ReplayMode,
}

impl Profiler {
    pub fn new() -> Self {
        Profiler { data: ProfileData::new(), ctx: Vec::new(), mode: ReplayMode::Normal }
    }

    /// The frame cycles should be attributed to (the `<vm>` bucket outside
    /// any guest frame, e.g. top-level compilation triggers).
    #[inline]
    pub fn ctx_top(&self) -> (u32, Tier) {
        self.ctx.last().copied().unwrap_or((RegionKey::OTHER_FUNC, Tier::Runtime))
    }

    /// Region kind for ordinary execution cycles: transactional work is
    /// `txn-body`; outside a transaction the frame's replay mode decides.
    #[inline]
    pub fn exec_kind(&self, in_tx: bool) -> RegionKind {
        if in_tx {
            RegionKind::TxnBody
        } else {
            match self.mode {
                ReplayMode::Normal => RegionKind::Main,
                ReplayMode::TxnRetry => RegionKind::TxnRetryLadder,
                ReplayMode::DeoptReplay => RegionKind::DeoptReplay,
            }
        }
    }
}
