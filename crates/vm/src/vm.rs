//! The VM facade: program loading, tier management, statistics.

use std::rc::Rc;

use std::collections::BTreeSet;

use nomap_bytecode::{compile_program, FuncId, Function, Op, Program};
use nomap_core::{
    audit_summaries, compile_dfg_audited, compile_dfg_with_report, compile_ftl_audited,
    compile_ftl_with_report, compile_txn_callee, compile_txn_callee_audited, next_scope,
    Architecture, AuditOptions, FtlAudit, TxnScope,
};
use nomap_hostprof::OpcodeCensus;
use nomap_ir::ipa::{summarize_with_roots, ProgramSummaries};
use nomap_ir::passes::PassConfig;
use nomap_jit::{compile_baseline, CompiledFn};
use nomap_machine::{CacheSim, ExecStats, HtmModel, RegionKey, RegionKind, Tier, Timing, TxState};
use nomap_profile::ProfileData;
use nomap_runtime::{Access, Runtime, Value};
use nomap_trace::{Metrics, Recorded, TraceEvent, TraceSink, Tracer};

use crate::error::{Flow, VmError};
use crate::profiler::{Profiler, ReplayMode};
use crate::tiering::{TierLimit, TierThresholds};
use crate::{exec, interp};

/// VM configuration.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Which of the paper's architectures to model.
    pub arch: Architecture,
    /// Highest tier allowed (Table I experiments cap this).
    pub tier_limit: TierLimit,
    /// Tier-up thresholds.
    pub thresholds: TierThresholds,
    /// Guest recursion limit.
    pub max_depth: usize,
    /// Force the initial transaction scope (ablations; the §V-C ladder
    /// still steps down from here on capacity aborts). `None` = `Nest`.
    pub initial_scope: Option<TxnScope>,
    /// Override the FTL optimizer configuration (ablations).
    pub ftl_passes: Option<PassConfig>,
    /// Extension beyond the paper (§VIII's `TMUnopt` limitation): also
    /// compile a transaction-aware *callee* variant of hot functions, used
    /// when they are called from inside a transaction. Off by default so
    /// the standard experiments match the paper's configurations.
    pub txn_callees: bool,
    /// Pass sanitizer: run the `nomap-verify` static verifier between
    /// every optimizer pass of every JIT compilation, and refuse to
    /// install code whose IR fails ([`VmError::Verifier`]). Defaults to
    /// the `NOMAP_SANITIZE` environment variable (any value but `0`).
    pub sanitize: bool,
    /// Seed each function's initial transaction scope from the static
    /// write-footprint estimate, skipping §V-C ladder steps the estimator
    /// can prove would happen.
    pub seed_scope: bool,
}

impl VmConfig {
    /// Default configuration for `arch` (full tier stack).
    pub fn new(arch: Architecture) -> Self {
        VmConfig {
            arch,
            tier_limit: TierLimit::Ftl,
            thresholds: TierThresholds::default(),
            max_depth: 256,
            initial_scope: None,
            ftl_passes: None,
            txn_callees: false,
            sanitize: std::env::var_os("NOMAP_SANITIZE").is_some_and(|v| v != "0"),
            seed_scope: false,
        }
    }

    /// True when any compilation should go through the audited pipeline.
    fn audited(&self) -> bool {
        self.sanitize || self.seed_scope
    }

    fn audit_options(&self) -> AuditOptions {
        AuditOptions { verify: self.sanitize, seed_scope: self.seed_scope }
    }
}

/// Summarizes a dirty audit as a [`VmError::Verifier`] (first few findings,
/// plus a count of the rest).
fn verifier_error(name: &str, audit: &FtlAudit) -> VmError {
    let shown = 3;
    let mut msg = format!("{name}: IR verification failed with ");
    msg.push_str(&format!("{} finding(s): ", audit.diagnostics.len()));
    let rendered: Vec<String> =
        audit.diagnostics.iter().take(shown).map(ToString::to_string).collect();
    msg.push_str(&rendered.join("; "));
    if audit.diagnostics.len() > shown {
        msg.push_str(&format!("; ... and {} more", audit.diagnostics.len() - shown));
    }
    VmError::Verifier(msg)
}

/// Per-function code-cache state.
pub(crate) struct CodeState {
    pub baseline: Option<Rc<CompiledFn>>,
    pub dfg: Option<Rc<CompiledFn>>,
    pub ftl: Option<Rc<CompiledFn>>,
    /// Transaction-aware callee variant (extension; see `VmConfig::txn_callees`).
    pub ftl_callee: Option<Rc<CompiledFn>>,
    /// Current transaction-scope ladder position (§V-C).
    pub scope: TxnScope,
    /// Check-caused aborts since the last FTL compile; too many trigger a
    /// recompile with the (now corrected) profiles.
    pub check_aborts: u32,
}

impl CodeState {
    fn new(config: &VmConfig) -> Self {
        let scope = if config.arch.uses_transactions() {
            config.initial_scope.unwrap_or(TxnScope::Nest)
        } else {
            TxnScope::None
        };
        CodeState { baseline: None, dfg: None, ftl: None, ftl_callee: None, scope, check_aborts: 0 }
    }
}

/// Register state checkpointed at the outermost `XBegin`, used to enter the
/// Baseline tier when the transaction aborts (paper Fig. 5's `Entry_3`).
pub(crate) struct TxFallback {
    /// Call depth of the owning frame.
    pub depth: usize,
    /// Function owning the transaction.
    pub func: FuncId,
    /// Bytecode index of the Baseline entry.
    pub bc: u32,
    /// Boxed values for the Baseline frame (`None` = dead register).
    pub regs: Vec<Option<Value>>,
}

/// The NoMap virtual machine. See the crate docs for a usage example.
pub struct Vm {
    /// Compiled program.
    pub program: Program,
    /// Shared runtime (heap, shapes, profiles, output).
    pub rt: Runtime,
    /// Execution statistics for the current measurement window.
    pub stats: ExecStats,
    /// Cycle model.
    pub timing: Timing,
    /// Configuration.
    pub config: VmConfig,
    pub(crate) funcs: Vec<Rc<Function>>,
    pub(crate) htm: HtmModel,
    pub(crate) tx: TxState,
    pub(crate) cache: CacheSim,
    pub(crate) code: Vec<CodeState>,
    pub(crate) depth: usize,
    pub(crate) stack_top: u64,
    pub(crate) tx_fallback: Option<TxFallback>,
    pub(crate) tx_saw_call: bool,
    pub(crate) log_buf: Vec<Access>,
    /// Machine overflow flag (set by int32 arithmetic).
    pub(crate) of: bool,
    /// Tier of the most recently executed guest instruction — the tier a
    /// transactional abort is attributed to in forensics events.
    pub(crate) last_tier: Tier,
    /// Lifecycle-event tracer (disabled by default; observation-only).
    pub(crate) tracer: Tracer,
    /// Cycle-attribution profiler (disabled by default; observation-only).
    pub(crate) profiler: Option<Box<Profiler>>,
    /// Dynamic opcode/digram census (disabled by default;
    /// observation-only, like the tracer and profiler).
    pub(crate) census: Option<Box<OpcodeCensus>>,
    /// Interprocedural summary table every JIT compile consults (callee
    /// returns, argument preconditions, callee-inclusive footprints).
    pub(crate) ipa: ProgramSummaries,
    /// Functions the host has called with arguments outside their claimed
    /// precondition; they are forced to root (top precondition) when the
    /// table is rebuilt.
    pub(crate) ipa_extra_roots: BTreeSet<FuncId>,
}

impl Vm {
    /// Compiles `source` and prepares a VM modelling `arch`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Compile`] on syntax or compile errors.
    pub fn new(source: &str, arch: Architecture) -> Result<Vm, VmError> {
        Vm::with_config(source, VmConfig::new(arch))
    }

    /// Compiles `source` under an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Compile`] on syntax or compile errors.
    pub fn with_config(source: &str, config: VmConfig) -> Result<Vm, VmError> {
        let program = compile_program(source)?;
        let mut rt = Runtime::new();
        // When "length" is not referenced by the program, reserve an id
        // that no program name can collide with.
        rt.length_name =
            Some(program.interner.get("length").unwrap_or(nomap_bytecode::NameId(u32::MAX)));
        let funcs: Vec<Rc<Function>> = program.functions.iter().cloned().map(Rc::new).collect();
        let code = (0..funcs.len()).map(|_| CodeState::new(&config)).collect();
        let ipa = summarize_with_roots(&program, &BTreeSet::new());
        if config.sanitize {
            let ds = audit_summaries(&program, &ipa);
            if nomap_verify::has_errors(&ds) {
                let msg: Vec<String> = ds.iter().take(3).map(ToString::to_string).collect();
                return Err(VmError::Verifier(format!(
                    "interprocedural summaries failed ipa-tv: {}",
                    msg.join("; ")
                )));
            }
        }
        let stack_base = rt.mem.stack_base();
        Ok(Vm {
            program,
            rt,
            stats: ExecStats::new(),
            timing: Timing::default(),
            config,
            funcs,
            htm: config.arch.htm_model(),
            tx: TxState::new(),
            cache: CacheSim::new(),
            code,
            depth: 0,
            stack_top: stack_base,
            tx_fallback: None,
            tx_saw_call: false,
            log_buf: Vec::new(),
            of: false,
            last_tier: Tier::Interpreter,
            tracer: Tracer::disabled(),
            profiler: None,
            census: None,
            ipa,
            ipa_extra_roots: BTreeSet::new(),
        })
    }

    /// The interprocedural summary table currently in force (report and
    /// test introspection).
    pub fn summaries(&self) -> &ProgramSummaries {
        &self.ipa
    }

    /// Runs the top-level script.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the guest program.
    pub fn run_main(&mut self) -> Result<Value, VmError> {
        self.call_id(Program::MAIN, &[])
    }

    /// Calls a top-level function by name.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnknownFunction`] when `name` is not declared,
    /// or propagates guest errors.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, VmError> {
        let id = *self
            .program
            .function_ids
            .get(name)
            .ok_or_else(|| VmError::UnknownFunction(name.to_owned()))?;
        self.call_id(id, args)
    }

    /// Calls a function by id.
    ///
    /// # Errors
    ///
    /// Propagates guest errors.
    pub fn call_id(&mut self, id: FuncId, args: &[Value]) -> Result<Value, VmError> {
        self.guard_precondition(id, args)?;
        let result = self.call_function(id, args);
        match result {
            Ok(v) => Ok(v),
            Err(Flow::Error(e)) => {
                // A guest error while transactional leaves consistent state:
                // roll the transaction back before surfacing the error.
                if self.tx.active() {
                    self.tx.abort(&mut self.rt.mem);
                    self.cache.flash_clear_sw();
                    self.tx_fallback = None;
                }
                Err(e)
            }
            Err(Flow::TxAbort) => {
                unreachable!("transaction abort escaped its owner frame")
            }
        }
    }

    /// Text written by the guest's `print`.
    pub fn output(&self) -> &str {
        &self.rt.output
    }

    /// Takes the guest `print` output accumulated so far, leaving the
    /// buffer empty. Lets a harness that reuses one `Vm` across phases
    /// hand each phase's output to its own shard report without cloning.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.rt.output)
    }

    /// Clears the statistics window (call after warmup for steady-state
    /// measurement; caches and code stay warm). The profiler ledger resets
    /// with it, so the cycle-conservation invariant keeps holding for the
    /// new window.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::new();
        if let Some(p) = &mut self.profiler {
            p.data.reset();
        }
    }

    /// The tier whose code would run if `name` were called now (test and
    /// example introspection).
    pub fn current_tier(&self, name: &str) -> Option<Tier> {
        let id = self.program.function_ids.get(name)?;
        let cs = &self.code[id.0 as usize];
        Some(if cs.ftl.is_some() && self.config.tier_limit.allows(Tier::Ftl) {
            Tier::Ftl
        } else if cs.dfg.is_some() && self.config.tier_limit.allows(Tier::Dfg) {
            Tier::Dfg
        } else if cs.baseline.is_some() && self.config.tier_limit.allows(Tier::Baseline) {
            Tier::Baseline
        } else {
            Tier::Interpreter
        })
    }

    /// Disassembles the code a tier compiled for `name`, if that tier has
    /// compiled it (debugging / examples).
    pub fn disassemble(&self, name: &str, tier: Tier) -> Option<String> {
        let id = self.program.function_ids.get(name)?;
        let cs = &self.code[id.0 as usize];
        let code = match tier {
            Tier::Baseline => cs.baseline.as_ref()?,
            Tier::Dfg => cs.dfg.as_ref()?,
            Tier::Ftl => cs.ftl.as_ref()?,
            _ => return None,
        };
        Some(nomap_machine::disasm::render_listing(&code.code))
    }

    /// Static machine-code sizes per compiled tier of `name`:
    /// `(baseline, dfg, ftl)`, `None` when the tier has not compiled it.
    pub fn code_sizes(&self, name: &str) -> Option<[Option<usize>; 3]> {
        let id = self.program.function_ids.get(name)?;
        let cs = &self.code[id.0 as usize];
        Some([
            cs.baseline.as_ref().map(|c| c.code.len()),
            cs.dfg.as_ref().map(|c| c.code.len()),
            cs.ftl.as_ref().map(|c| c.code.len()),
        ])
    }

    // ---- tracing ---------------------------------------------------------

    /// Enables lifecycle-event tracing with an in-memory ring retaining the
    /// most recent `ring_capacity` events. Tracing is observation-only: it
    /// never changes [`ExecStats`] or program results.
    pub fn enable_tracing(&mut self, ring_capacity: usize) {
        self.tracer = Tracer::enabled(ring_capacity);
    }

    /// Attaches an additional trace sink (e.g. a
    /// [`nomap_trace::JsonlSink`]). Only useful after [`Vm::enable_tracing`].
    pub fn add_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.add_sink(sink);
    }

    /// Events retained in the trace ring, oldest first (empty when tracing
    /// is disabled).
    pub fn trace(&self) -> Vec<Recorded> {
        self.tracer.events()
    }

    /// Aggregated trace metrics (counters, abort breakdowns, histograms,
    /// tier residency).
    pub fn trace_metrics(&self) -> &Metrics {
        self.tracer.metrics()
    }

    /// Total events emitted since tracing was enabled (including events the
    /// ring has since evicted).
    pub fn trace_emitted(&self) -> u64 {
        self.tracer.emitted()
    }

    /// Flushes attached trace sinks.
    pub fn flush_trace(&mut self) {
        self.tracer.flush();
    }

    /// Source-level name of `id` (`"«main»"` for the top-level script).
    pub fn func_name(&self, id: FuncId) -> &str {
        &self.funcs[id.0 as usize].name
    }

    // ---- profiling -------------------------------------------------------

    /// Enables cycle attribution: every simulated cycle is charged to a
    /// (function × tier × region) scope. Observation-only, like tracing —
    /// `ExecStats` and program results are unchanged — and zero-cost when
    /// left disabled (one `Option` test per charge).
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(Box::new(Profiler::new()));
    }

    /// Whether cycle attribution is being collected.
    pub fn profiling_enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// The profile collected since [`Vm::enable_profiling`] (or the last
    /// [`Vm::reset_stats`]); `None` when profiling is disabled.
    pub fn profile(&self) -> Option<&ProfileData> {
        self.profiler.as_ref().map(|p| &p.data)
    }

    /// Function-id → name table for the collected profile (report
    /// rendering).
    pub fn profile_names(&self) -> std::collections::BTreeMap<u32, String> {
        self.funcs.iter().enumerate().map(|(i, f)| (i as u32, f.name.clone())).collect()
    }

    /// Emits the ledger as schema-v3 [`TraceEvent::CycleRegion`] events,
    /// one per region, through the tracer (no-op unless both profiling and
    /// tracing are enabled). Call at the end of a measurement window.
    pub fn flush_profile_to_trace(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        let regions: Vec<(RegionKey, u64)> = match &self.profiler {
            Some(p) => p.data.ledger.regions().map(|(k, v)| (*k, *v)).collect(),
            None => return,
        };
        let now = self.stats.total_cycles();
        for (key, cycles) in regions {
            let name = if key.func == RegionKey::OTHER_FUNC {
                "<vm>".to_owned()
            } else {
                self.funcs
                    .get(key.func as usize)
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| format!("fn#{}", key.func))
            };
            let ev = TraceEvent::CycleRegion {
                func: key.func,
                name,
                tier: key.tier,
                region: key.kind.name().to_owned(),
                cycles,
            };
            self.tracer.emit(now, move || ev);
        }
    }

    // ---- opcode census ---------------------------------------------------

    /// Enables the dynamic opcode/digram frequency census: the interpreter
    /// counts every executed opcode kind and every statically-adjacent
    /// opcode pair. Observation-only and allocation-free on the dispatch
    /// path (one `Option` test plus two array increments); `ExecStats`,
    /// cycles and program results are unchanged.
    pub fn enable_opcode_census(&mut self) {
        if self.census.is_none() {
            self.census = Some(Box::new(OpcodeCensus::new()));
        }
    }

    /// The census collected so far; `None` when disabled.
    pub fn opcode_census(&self) -> Option<&OpcodeCensus> {
        self.census.as_deref()
    }

    /// Drains the census into the tracer's metrics registry as named
    /// opcode/digram counters (no-op unless both the census and tracing
    /// are enabled). Draining means repeated flushes never double-count.
    pub fn flush_census_to_metrics(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        let Some(census) = self.census.as_deref_mut() else { return };
        for (idx, n) in census.nonzero_ops() {
            if let Some(name) = Op::KIND_NAMES.get(idx) {
                self.tracer.record_opcode(name, n);
            }
        }
        for (a, b, n) in census.nonzero_digrams() {
            if let (Some(pa), Some(pb)) = (Op::KIND_NAMES.get(a), Op::KIND_NAMES.get(b)) {
                self.tracer.record_digram(pa, pb, n);
            }
        }
        census.clear();
    }

    /// The one place simulated cycles enter [`ExecStats`]. Routing every
    /// charge site (executor, interpreter, runtime helpers, memory system,
    /// abort rollback, HTM overheads) through here is what makes the
    /// profiler's conservation invariant — ledger total ==
    /// `ExecStats::total_cycles()` — structural.
    #[inline]
    pub(crate) fn add_cycles(
        &mut self,
        in_tx: bool,
        cycles: u64,
        func: u32,
        tier: Tier,
        kind: RegionKind,
    ) {
        if in_tx {
            self.stats.cycles_tm += cycles;
        } else {
            self.stats.cycles_non_tm += cycles;
        }
        if let Some(p) = &mut self.profiler {
            p.data.charge(RegionKey { func, tier, kind }, cycles);
        }
    }

    /// Region kind for ordinary execution cycles at this moment
    /// ([`RegionKind::Main`] when profiling is disabled — the value is
    /// unused in that case).
    #[inline]
    pub(crate) fn exec_kind(&self, in_tx: bool) -> RegionKind {
        match &self.profiler {
            Some(p) => p.exec_kind(in_tx),
            None => RegionKind::Main,
        }
    }

    /// (function, tier) owning unattributed work right now (runtime
    /// helpers, memory traffic).
    #[inline]
    pub(crate) fn profiler_ctx(&self) -> (u32, Tier) {
        match &self.profiler {
            Some(p) => p.ctx_top(),
            None => (RegionKey::OTHER_FUNC, Tier::Runtime),
        }
    }

    /// Pushes a frame context; returns the caller's replay mode for
    /// [`Vm::profiler_exit`]. The new frame inherits the mode (work done on
    /// behalf of a retry/replay is part of its cost).
    #[inline]
    pub(crate) fn profiler_enter(&mut self, func: u32, tier: Tier) -> ReplayMode {
        match &mut self.profiler {
            Some(p) => {
                p.ctx.push((func, tier));
                p.mode
            }
            None => ReplayMode::Normal,
        }
    }

    /// Pops the frame context pushed by [`Vm::profiler_enter`] and restores
    /// the caller's replay mode.
    #[inline]
    pub(crate) fn profiler_exit(&mut self, saved: ReplayMode) {
        if let Some(p) = &mut self.profiler {
            p.ctx.pop();
            p.mode = saved;
        }
    }

    /// The current frame switched tiers in place (OSR / transaction
    /// fallback materialized a Baseline frame): retarget the context and
    /// enter `mode`.
    #[inline]
    pub(crate) fn profiler_frame_switch(&mut self, func: u32, tier: Tier, mode: ReplayMode) {
        if let Some(p) = &mut self.profiler {
            if let Some(top) = p.ctx.last_mut() {
                *top = (func, tier);
            }
            p.mode = mode;
        }
    }

    /// Credits dynamic instructions to the profile (check-density
    /// denominator). No-op when disabled.
    #[inline]
    pub(crate) fn profiler_insts(&mut self, func: u32, tier: Tier, n: u64) {
        if let Some(p) = &mut self.profiler {
            p.data.record_insts(func, tier, n);
        }
    }

    /// Records one executed check. No-op when disabled.
    #[inline]
    pub(crate) fn profiler_check(&mut self, func: u32, kind: nomap_machine::CheckKind) {
        if let Some(p) = &mut self.profiler {
            p.data.record_check(func, kind);
        }
    }

    /// Records one taken deoptimization site. No-op when disabled.
    #[inline]
    pub(crate) fn profiler_deopt(
        &mut self,
        func: u32,
        smp: u32,
        bc: u32,
        kind: nomap_machine::CheckKind,
    ) {
        if let Some(p) = &mut self.profiler {
            p.data.record_deopt(func, smp, bc, kind);
        }
    }

    // ---- internal --------------------------------------------------------

    /// Closed-world escape hatch for the summary table: in-program call
    /// sites are covered statically, but the *host* can call any function
    /// with any arguments. When a host call's argument falls outside the
    /// claimed precondition, the function is forced to root (top
    /// precondition), the table is rebuilt bottom-up, and every
    /// summary-informed compile is discarded before the call proceeds.
    fn guard_precondition(&mut self, id: FuncId, args: &[Value]) -> Result<(), VmError> {
        let violated = match self.ipa.get(id) {
            Some(sum) => sum.params.iter().enumerate().any(|(k, pre)| {
                let arg = args.get(k).copied().unwrap_or(Value::UNDEFINED);
                !pre.admits(arg)
            }),
            None => false,
        };
        if !violated {
            return Ok(());
        }
        self.ipa_extra_roots.insert(id);
        self.ipa = summarize_with_roots(&self.program, &self.ipa_extra_roots);
        if self.config.sanitize {
            let ds = audit_summaries(&self.program, &self.ipa);
            if nomap_verify::has_errors(&ds) {
                let msg: Vec<String> = ds.iter().take(3).map(ToString::to_string).collect();
                return Err(VmError::Verifier(format!(
                    "re-rooted summaries failed ipa-tv: {}",
                    msg.join("; ")
                )));
            }
        }
        for cs in &mut self.code {
            // Baseline code never consults summaries and stays valid.
            cs.dfg = None;
            cs.ftl = None;
            cs.ftl_callee = None;
        }
        Ok(())
    }

    pub(crate) fn call_function(&mut self, id: FuncId, args: &[Value]) -> Result<Value, Flow> {
        if self.depth >= self.config.max_depth {
            return Err(Flow::Error(VmError::StackOverflow));
        }
        self.rt.profiles.func_mut(id).call_count += 1;
        self.maybe_compile(id)?;
        self.depth += 1;
        let result = self.dispatch(id, args);
        self.depth -= 1;
        result
    }

    fn dispatch(&mut self, id: FuncId, args: &[Value]) -> Result<Value, Flow> {
        let cs = &self.code[id.0 as usize];
        let limit = self.config.tier_limit;
        let code = if limit.allows(Tier::Ftl) && self.tx.active() && cs.ftl_callee.is_some() {
            // Extension: inside a transaction, prefer the callee variant
            // whose checks abort the caller's transaction.
            cs.ftl_callee.clone()
        } else if limit.allows(Tier::Ftl) && cs.ftl.is_some() {
            cs.ftl.clone()
        } else if limit.allows(Tier::Dfg) && cs.dfg.is_some() {
            cs.dfg.clone()
        } else if limit.allows(Tier::Baseline) && cs.baseline.is_some() {
            cs.baseline.clone()
        } else {
            None
        };
        match code {
            Some(code) => exec::run_machine(self, code, args),
            None => interp::interpret(self, id, args),
        }
    }

    fn maybe_compile(&mut self, id: FuncId) -> Result<(), Flow> {
        let prof = self.rt.profiles.func(id);
        let hot = TierThresholds::hotness(prof.call_count, prof.back_edges);
        let limit = self.config.tier_limit;
        let th = self.config.thresholds;
        let func = self.funcs[id.0 as usize].clone();
        if limit.allows(Tier::Baseline)
            && hot >= th.baseline
            && self.code[id.0 as usize].baseline.is_none()
        {
            let c = compile_baseline(&func, &mut self.rt);
            self.emit_tier_up(id, Tier::Baseline, c.code.len(), None, false);
            self.code[id.0 as usize].baseline = Some(Rc::new(c));
        }
        if limit.allows(Tier::Dfg) && hot >= th.dfg && self.code[id.0 as usize].dfg.is_none() {
            let (c, report) = if self.config.sanitize {
                let mut audit = compile_dfg_audited(
                    &func,
                    &mut self.rt,
                    self.config.audit_options(),
                    Some(&self.ipa),
                )
                .map_err(VmError::from)?;
                self.emit_verify(id, &func.name, &audit);
                let Some(code) = audit.code.take() else {
                    return Err(verifier_error(&func.name, &audit).into());
                };
                (code, audit.report)
            } else {
                compile_dfg_with_report(&func, &mut self.rt, Some(&self.ipa))
                    .map_err(VmError::from)?
            };
            self.stats.dfg_compiles += 1;
            self.emit_tier_up(id, Tier::Dfg, c.code.len(), None, false);
            self.emit_check_verdict(id, &func.name, Tier::Dfg, report.prove);
            self.code[id.0 as usize].dfg = Some(Rc::new(c));
        }
        if limit.allows(Tier::Ftl) && hot >= th.ftl && self.code[id.0 as usize].ftl.is_none() {
            let mut scope = self.code[id.0 as usize].scope;
            let passes = self.config.ftl_passes.unwrap_or_else(PassConfig::ftl);
            let (c, report) = if self.config.audited() {
                let mut audit = compile_ftl_audited(
                    &func,
                    &mut self.rt,
                    self.config.arch,
                    scope,
                    passes,
                    self.config.audit_options(),
                    Some(&self.ipa),
                )
                .map_err(VmError::from)?;
                self.emit_verify(id, &func.name, &audit);
                // Footprint seeding may have stepped the ladder statically;
                // keep the per-function state in sync so later capacity
                // aborts continue from the seeded rung.
                scope = audit.scope_used;
                self.code[id.0 as usize].scope = scope;
                let Some(code) = audit.code.take() else {
                    return Err(verifier_error(&func.name, &audit).into());
                };
                (code, audit.report)
            } else {
                compile_ftl_with_report(
                    &func,
                    &mut self.rt,
                    self.config.arch,
                    scope,
                    passes,
                    Some(&self.ipa),
                )
                .map_err(VmError::from)?
            };
            self.stats.ftl_compiles += 1;
            self.emit_tier_up(id, Tier::Ftl, c.code.len(), Some(scope), false);
            if self.tracer.is_enabled() {
                let ev = TraceEvent::PassOutcome {
                    func: id.0,
                    name: func.name.clone(),
                    transactions_placed: report.transactions_placed,
                    checks_to_aborts: report.checks_to_aborts,
                    bounds_combined: report.bounds_combined,
                    overflow_removed: report.overflow_removed,
                };
                let cycles = self.stats.total_cycles();
                self.tracer.emit(cycles, move || ev);
            }
            self.emit_check_verdict(id, &func.name, Tier::Ftl, report.prove);
            self.code[id.0 as usize].ftl = Some(Rc::new(c));
            self.code[id.0 as usize].check_aborts = 0;
        }
        if self.config.txn_callees
            && self.config.arch.uses_transactions()
            && limit.allows(Tier::Ftl)
            && hot >= th.ftl
            && self.code[id.0 as usize].ftl_callee.is_none()
        {
            let passes = self.config.ftl_passes.unwrap_or_else(PassConfig::ftl);
            let c = if self.config.sanitize {
                let mut audit = compile_txn_callee_audited(
                    &func,
                    &mut self.rt,
                    self.config.arch,
                    passes,
                    self.config.audit_options(),
                    Some(&self.ipa),
                )
                .map_err(VmError::from)?;
                self.emit_verify(id, &func.name, &audit);
                let Some(code) = audit.code.take() else {
                    return Err(verifier_error(&func.name, &audit).into());
                };
                code
            } else {
                compile_txn_callee(&func, &mut self.rt, self.config.arch, passes, Some(&self.ipa))
                    .map_err(VmError::from)?
            };
            self.emit_tier_up(id, Tier::Ftl, c.code.len(), None, true);
            self.code[id.0 as usize].ftl_callee = Some(Rc::new(c));
        }
        Ok(())
    }

    /// Emits a [`TraceEvent::CheckVerdict`] with one compilation's static
    /// check-elision tallies (skipped when the function had no checks to
    /// analyze, so interpreter-only runs stay event-free).
    fn emit_check_verdict(
        &mut self,
        id: FuncId,
        name: &str,
        tier: Tier,
        prove: nomap_ir::ProveStats,
    ) {
        if !self.tracer.is_enabled() || prove.total_checks() == 0 {
            return;
        }
        let ev = TraceEvent::CheckVerdict {
            func: id.0,
            name: name.to_owned(),
            tier,
            proved_safe: prove.total_proved_safe(),
            proved_fail: prove.total_proved_fail(),
            unknown: prove.total_unknown(),
            elided: prove.total_elided(),
        };
        let cycles = self.stats.total_cycles();
        self.tracer.emit(cycles, move || ev);
    }

    /// Emits a [`TraceEvent::Verify`] for one audited compilation.
    fn emit_verify(&mut self, id: FuncId, name: &str, audit: &FtlAudit) {
        if !self.tracer.is_enabled() {
            return;
        }
        let ev = TraceEvent::Verify {
            func: id.0,
            name: name.to_owned(),
            stages: audit.stages,
            diagnostics: audit.diagnostics.len(),
            clean: audit.clean(),
            seeded_scope: (audit.scope_used != audit.scope_requested)
                .then(|| format!("{:?}", audit.scope_used)),
        };
        let cycles = self.stats.total_cycles();
        self.tracer.emit(cycles, move || ev);
    }

    /// Emits a [`TraceEvent::TierUp`] for a fresh compilation of `id`.
    fn emit_tier_up(
        &mut self,
        id: FuncId,
        tier: Tier,
        code_len: usize,
        scope: Option<TxnScope>,
        txn_callee: bool,
    ) {
        if !self.tracer.is_enabled() {
            return;
        }
        let ev = TraceEvent::TierUp {
            func: id.0,
            name: self.funcs[id.0 as usize].name.clone(),
            tier,
            code_len,
            scope: scope.map(|s| format!("{s:?}")),
            txn_callee,
        };
        let cycles = self.stats.total_cycles();
        self.tracer.emit(cycles, move || ev);
    }

    /// Steps the §V-C ladder after a capacity abort of `func`'s transaction
    /// and schedules a recompile.
    pub(crate) fn shrink_transactions(&mut self, func: FuncId, saw_call: bool) {
        let cs = &mut self.code[func.0 as usize];
        let from = cs.scope;
        cs.scope = next_scope(cs.scope, saw_call);
        let to = cs.scope;
        cs.ftl = None; // recompiled at the next call with the new scope
        cs.ftl_callee = None;
        self.rt.profiles.func_mut(func).capacity_aborts += 1;
        if self.tracer.is_enabled() {
            let ev = TraceEvent::LadderStep {
                func: func.0,
                name: self.funcs[func.0 as usize].name.clone(),
                from: format!("{from:?}"),
                to: format!("{to:?}"),
                saw_call,
            };
            let cycles = self.stats.total_cycles();
            self.tracer.emit(cycles, move || ev);
        }
    }

    /// Too many check aborts: profiles have been corrected by the Baseline
    /// re-executions; recompile FTL with them.
    pub(crate) fn note_check_abort(&mut self, func: FuncId) {
        let cs = &mut self.code[func.0 as usize];
        cs.check_aborts += 1;
        if cs.check_aborts >= 10 {
            let check_aborts = cs.check_aborts;
            cs.ftl = None;
            cs.ftl_callee = None;
            cs.check_aborts = 0;
            if self.tracer.is_enabled() {
                let ev = TraceEvent::Recompile {
                    func: func.0,
                    name: self.funcs[func.0 as usize].name.clone(),
                    check_aborts,
                };
                let cycles = self.stats.total_cycles();
                self.tracer.emit(cycles, move || ev);
            }
        }
    }

    /// Ensures Baseline code exists (deopt targets need it) and returns it.
    pub(crate) fn baseline_code(&mut self, id: FuncId) -> Rc<CompiledFn> {
        if self.code[id.0 as usize].baseline.is_none() {
            let func = self.funcs[id.0 as usize].clone();
            let c = compile_baseline(&func, &mut self.rt);
            self.code[id.0 as usize].baseline = Some(Rc::new(c));
        }
        self.code[id.0 as usize].baseline.clone().expect("just compiled")
    }
}
