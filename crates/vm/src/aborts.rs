//! `nomap aborts` — per-abort blame attribution and the static-vs-dynamic
//! footprint calibration observatory.
//!
//! The report has two joined halves:
//!
//! 1. **Dynamic forensics**: the workload runs once under tracing and
//!    profiling, and every transactional abort is captured as an
//!    [`AbortSite`] — the schema-v7 `tx-abort-blame` event's payload: the
//!    faulting word/line/set and victim-set occupancy (capacity aborts),
//!    the read/write speculative-set sizes in lines and bytes at the point
//!    of failure, the dynamic transaction length, the §V-C ladder attempt
//!    number and the owner function × tier × bytecode anchor.
//! 2. **Static calibration**: every function is recompiled through the
//!    audited FTL pipeline with footprint seeding
//!    (`AuditOptions { seed_scope: true }`) under the interprocedural
//!    summary table, exactly as `VmConfig::seed_scope` would. The seeded
//!    scope is the estimator's *prediction*: a stepped scope means "this
//!    transaction would overflow the write cache".
//!
//! Joining the two yields a four-verdict calibration lattice per function:
//!
//! - `predicted-abort-and-aborted` — the estimator stepped the scope and
//!   the unseeded run did take capacity aborts (true positive);
//! - `predicted-safe-and-safe` — scope kept, no capacity aborts (true
//!   negative);
//! - `over-prediction` — scope stepped but the run never overflowed
//!   (conservative lower bound met a workload that stayed small; benign);
//! - `under-prediction` — scope kept yet the run aborted on capacity.
//!   Under-predictions must be *explained* by a blame pattern the
//!   estimator provably cannot see, or the corpus census gate fails:
//!   - `set-conflict`: the fault's victim set overflowed its ways while
//!     the total write set was still below capacity — the estimator
//!     bounds total distinct lines, not their set distribution;
//!   - `read-set`: the faulting access was a *read* (RTM tracks the
//!     speculative read set in the L2) — the estimator bounds write
//!     traffic only and does not model read sets at all;
//!   - `callee-traffic`: a ladder step recorded `saw_call` — the
//!     overflow included writes from called functions, which the
//!     per-function estimate cannot bound;
//!   - `unopt-tier`: the faulting instruction ran in a non-FTL tier
//!     (TMUnopt code inside the transaction), which the FTL estimator
//!     never analyzed;
//!   - `unproven-trip`: an innermost loop with element-store traffic
//!     whose trip count the estimator could not prove constant — its
//!     lower bound is only engaged by constant-bounded compares, so a
//!     runtime-valued bound (a global, a parameter) leaves the loop
//!     uncounted by design;
//!   - `uncounted-stores`: the faulting transaction's write set genuinely
//!     exceeded total capacity (`write_lines > capacity_lines` at the
//!     fault), yet the proven lower bound stayed below it — dynamic store
//!     traffic the estimator's affine-induction-variable matcher could
//!     not attribute (computed addressing, nested loops).
//!
//! Everything is derived deterministically: abort sites are reported in
//! emission order, rows in function-id order, and no wall-clock enters
//! the report.

use std::cell::RefCell;
use std::rc::Rc;

use nomap_core::{compile_ftl_audited, Architecture, AuditOptions, TxnScope};
use nomap_ir::passes::PassConfig;
use nomap_machine::{abort_reason_key, Tier};
use nomap_trace::{obj, tier_name, JsonValue, TraceEvent, TraceSink};
use nomap_verify::ScopeAdvice;

use crate::error::VmError;
use crate::vm::{Vm, VmConfig};

/// One attributed transactional abort (the `tx-abort-blame` payload plus
/// its cycle stamp).
#[derive(Debug, Clone)]
pub struct AbortSite {
    /// VM cycle counter at the abort.
    pub cycles: u64,
    /// Owner function id (`None` when the transaction had no fallback).
    pub func: Option<u32>,
    /// Owner function name (`<vm>` when unowned).
    pub name: String,
    /// Tier of the most recently executed guest instruction.
    pub tier: Tier,
    /// Bytecode index of the transaction's Baseline re-entry.
    pub bc: u32,
    /// Canonical abort-reason key (`check:bounds`, `capacity`, ...).
    pub reason: String,
    /// §V-C scope the owner was compiled at when it aborted.
    pub scope: String,
    /// Ladder attempt number (1 = first transaction of this function).
    pub attempt: u32,
    /// Victim cache set of the faulting access (capacity aborts only).
    pub set: Option<u64>,
    /// Speculative lines in the victim set including the faulting line.
    pub set_ways: u32,
    /// The faulting access was a read (RTM read-set overflow).
    pub read_fault: bool,
    /// Speculative write set at the fault, in cache lines.
    pub write_lines: u64,
    /// Speculative write set at the fault, in bytes.
    pub write_bytes: u64,
    /// Speculative read set at the fault, in cache lines (RTM only).
    pub read_lines: u64,
    /// Speculative read set at the fault, in bytes (RTM only).
    pub read_bytes: u64,
    /// Dynamic instructions inside the transaction at the fault.
    pub instructions: u64,
}

impl AbortSite {
    /// One stable text line for the per-abort blame section.
    pub fn render(&self) -> String {
        let site = match self.set {
            Some(s) => {
                let rw = if self.read_fault { "read" } else { "write" };
                format!("{rw} set {s} ways {}", self.set_ways)
            }
            None => "no fault site".to_owned(),
        };
        format!(
            "@{} {}@{}:{} {} #{} [{}] {site} w {}L/{}B r {}L/{}B len {}",
            self.cycles,
            self.name,
            tier_name(self.tier),
            self.bc,
            self.reason,
            self.attempt,
            self.scope,
            self.write_lines,
            self.write_bytes,
            self.read_lines,
            self.read_bytes,
            self.instructions
        )
    }

    /// JSON object mirroring the render form.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("cycles", self.cycles.into()),
            ("func", self.func.map_or(JsonValue::Null, Into::into)),
            ("name", self.name.as_str().into()),
            ("tier", tier_name(self.tier).into()),
            ("bc", self.bc.into()),
            ("reason", self.reason.as_str().into()),
            ("scope", self.scope.as_str().into()),
            ("attempt", self.attempt.into()),
            ("set", self.set.map_or(JsonValue::Null, Into::into)),
            ("set_ways", self.set_ways.into()),
            ("read_fault", self.read_fault.into()),
            ("write_lines", self.write_lines.into()),
            ("write_bytes", self.write_bytes.into()),
            ("read_lines", self.read_lines.into()),
            ("read_bytes", self.read_bytes.into()),
            ("instructions", self.instructions.into()),
        ])
    }
}

/// One function's calibration row: dynamic transaction behaviour joined
/// with the static footprint prediction.
#[derive(Debug, Clone)]
pub struct AbortsFnRow {
    /// Function id.
    pub func: u32,
    /// Function name.
    pub name: String,
    /// Committed transactions owned by this function.
    pub commits: u64,
    /// Largest committed write footprint (bytes).
    pub commit_write_max: u64,
    /// Largest committed read footprint (bytes; RTM only).
    pub commit_read_max: u64,
    /// Aborts by canonical reason key.
    pub aborts: std::collections::BTreeMap<String, u64>,
    /// Capacity aborts (the calibration's "aborted" signal).
    pub capacity: u64,
    /// Capacity aborts that captured a fault site.
    pub set_faults: u64,
    /// Largest write footprint observed at an abort (bytes).
    pub abort_write_max: u64,
    /// Largest read footprint observed at an abort (bytes).
    pub abort_read_max: u64,
    /// §V-C ladder steps taken during the run.
    pub ladder_steps: u64,
    /// Any ladder step saw a call inside the transaction.
    pub saw_call: bool,
    /// Scope the ladder ended at.
    pub final_scope: String,
    /// Scope requested from the seeded audit (the ladder's start).
    pub scope_requested: String,
    /// Scope the footprint estimator seeded (its prediction).
    pub scope_seeded: String,
    /// The estimator predicted a capacity overflow.
    pub predicted_abort: bool,
    /// The estimator's raw advice: `keep`, `tile(n)`, `disable` — or `-`
    /// when the compile was not transaction-aware (no estimate ran).
    pub advice: String,
    /// Largest proven-distinct-line lower bound over innermost loops.
    pub est_lines: u64,
    /// Innermost loops with element-store traffic whose trip count the
    /// estimator could not prove constant (its designed-in blind spot).
    pub unproven_loops: u32,
    /// Calibration verdict (see the module docs).
    pub verdict: String,
    /// Explanation for an under-prediction, when one applies.
    pub explanation: Option<String>,
}

impl AbortsFnRow {
    /// One stable text line for the calibration section.
    pub fn render(&self) -> String {
        let aborts: Vec<String> = self.aborts.iter().map(|(k, n)| format!("{k}={n}")).collect();
        format!(
            "f{}:{} commits={} aborts[{}] ladder={}{} est[{} lines={} unproven={}] scope {}->{} dyn {} verdict={}{}",
            self.func,
            self.name,
            self.commits,
            aborts.join(","),
            self.ladder_steps,
            if self.saw_call { " saw-call" } else { "" },
            self.advice,
            self.est_lines,
            self.unproven_loops,
            self.scope_requested,
            self.scope_seeded,
            self.final_scope,
            self.verdict,
            match &self.explanation {
                Some(e) => format!(" explain={e}"),
                None => String::new(),
            }
        )
    }

    /// JSON object mirroring the render form.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("func", self.func.into()),
            ("name", self.name.as_str().into()),
            ("commits", self.commits.into()),
            ("commit_write_max", self.commit_write_max.into()),
            ("commit_read_max", self.commit_read_max.into()),
            (
                "aborts",
                obj(self.aborts.iter().map(|(k, n)| (k.as_str(), JsonValue::from(*n))).collect()),
            ),
            ("capacity", self.capacity.into()),
            ("set_faults", self.set_faults.into()),
            ("abort_write_max", self.abort_write_max.into()),
            ("abort_read_max", self.abort_read_max.into()),
            ("ladder_steps", self.ladder_steps.into()),
            ("saw_call", self.saw_call.into()),
            ("final_scope", self.final_scope.as_str().into()),
            ("scope_requested", self.scope_requested.as_str().into()),
            ("scope_seeded", self.scope_seeded.as_str().into()),
            ("predicted_abort", self.predicted_abort.into()),
            ("advice", self.advice.as_str().into()),
            ("est_lines", self.est_lines.into()),
            ("unproven_loops", self.unproven_loops.into()),
            ("verdict", self.verdict.as_str().into()),
            ("explanation", self.explanation.as_deref().map_or(JsonValue::Null, Into::into)),
        ])
    }
}

/// The whole `nomap aborts` report for one program.
#[derive(Debug, Default)]
pub struct AbortsReport {
    /// One row per function with transactional activity or a static
    /// prediction, in function-id order.
    pub rows: Vec<AbortsFnRow>,
    /// Every attributed abort, in emission order.
    pub sites: Vec<AbortSite>,
    /// Write-cache capacity in lines (`sets × ways`) of the modelled HTM.
    pub capacity_lines: u64,
    /// Write-cache line size in bytes.
    pub line_bytes: u64,
}

impl AbortsReport {
    fn verdict_count(&self, v: &str) -> usize {
        self.rows.iter().filter(|r| r.verdict == v).count()
    }

    /// Rows with verdict `under-prediction` and no explanation. The corpus
    /// census gate requires this to be zero.
    pub fn unexplained_under_predictions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == "under-prediction" && r.explanation.is_none())
            .count()
    }

    /// One-line totals (the corpus census line body).
    pub fn summary(&self) -> String {
        format!(
            "funcs={} sites={} commits={} tp={} tn={} over={} under={} unexplained={}",
            self.rows.len(),
            self.sites.len(),
            self.rows.iter().map(|r| r.commits).sum::<u64>(),
            self.verdict_count("predicted-abort-and-aborted"),
            self.verdict_count("predicted-safe-and-safe"),
            self.verdict_count("over-prediction"),
            self.verdict_count("under-prediction"),
            self.unexplained_under_predictions()
        )
    }

    /// The full stable text report, listing at most `top` abort sites.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::from("== calibration (static seed vs dynamic ladder) ==\n");
        for r in &self.rows {
            out.push_str(&r.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "== per-abort blame ({} of {} site(s)) ==\n",
            top.min(self.sites.len()),
            self.sites.len()
        ));
        for s in self.sites.iter().take(top) {
            out.push_str(&s.render());
            out.push('\n');
        }
        out.push_str(&format!("aborts: {}\n", self.summary()));
        out
    }

    /// Whole-report JSON (the CI census artifact).
    pub fn to_json(&self, arch: Architecture) -> JsonValue {
        obj(vec![
            ("arch", arch.name().into()),
            ("capacity_lines", self.capacity_lines.into()),
            ("line_bytes", self.line_bytes.into()),
            ("functions", self.rows.len().into()),
            ("tp", self.verdict_count("predicted-abort-and-aborted").into()),
            ("tn", self.verdict_count("predicted-safe-and-safe").into()),
            ("over", self.verdict_count("over-prediction").into()),
            ("under", self.verdict_count("under-prediction").into()),
            ("unexplained", self.unexplained_under_predictions().into()),
            ("rows", JsonValue::Array(self.rows.iter().map(AbortsFnRow::to_json).collect())),
            ("sites", JsonValue::Array(self.sites.iter().map(AbortSite::to_json).collect())),
        ])
    }
}

/// Collects blame and ladder events without the ring's capacity bound.
#[derive(Default)]
struct Collector {
    events: Rc<RefCell<Vec<(u64, TraceEvent)>>>,
}

impl TraceSink for Collector {
    fn record(&mut self, _seq: u64, cycles: u64, event: &TraceEvent) {
        match event {
            TraceEvent::TxAbortBlame { .. } | TraceEvent::LadderStep { .. } => {
                self.events.borrow_mut().push((cycles, event.clone()));
            }
            _ => {}
        }
    }
}

/// Builds the report for `source` under `arch`.
///
/// Like `nomap prove` and `nomap ipa`, the guest's top level runs once and
/// `run()` (when defined) is called `warmup` times, under tracing and
/// profiling; guest runtime errors during warmup do not fail the report.
/// The static half then recompiles every function through the audited FTL
/// pipeline with footprint seeding under the interprocedural summary
/// table.
///
/// # Errors
///
/// Returns [`VmError::Compile`] when `source` does not parse, or
/// [`VmError::Jit`] when IR construction fails during recompilation.
pub fn aborts_source(
    source: &str,
    arch: Architecture,
    warmup: u32,
) -> Result<AbortsReport, VmError> {
    let mut config = VmConfig::new(arch);
    config.sanitize = false;
    config.seed_scope = false; // observe the real §V-C ladder
    let mut vm = Vm::with_config(source, config)?;
    vm.enable_profiling();
    vm.enable_tracing(1); // the collector sink retains what we need
    let events = Rc::new(RefCell::new(Vec::new()));
    vm.add_trace_sink(Box::new(Collector { events: Rc::clone(&events) }));
    let _ = vm.run_main();
    if vm.program.function_ids.contains_key("run") {
        for _ in 0..warmup {
            if vm.call("run", &[]).is_err() {
                break;
            }
        }
    }

    let model = arch.htm_model();
    let capacity_lines = model.write_cache.size_bytes / model.write_cache.line_bytes;
    let line_bytes = model.write_cache.line_bytes;
    let mut report = AbortsReport { capacity_lines, line_bytes, ..AbortsReport::default() };

    // Dynamic half: fold the collected events into per-function facts.
    let nfuncs = vm.funcs.len();
    let mut ladder_steps = vec![0u64; nfuncs];
    let mut saw_call = vec![false; nfuncs];
    let mut set_conflict = vec![false; nfuncs];
    let mut read_set = vec![false; nfuncs];
    let mut total_overflow = vec![false; nfuncs];
    let mut unopt_tier = vec![false; nfuncs];
    let mut set_faults = vec![0u64; nfuncs];
    for (cycles, ev) in events.borrow().iter() {
        match ev {
            TraceEvent::LadderStep { func, saw_call: sc, .. } => {
                if let Some(i) = usize::try_from(*func).ok().filter(|&i| i < nfuncs) {
                    ladder_steps[i] += 1;
                    saw_call[i] |= *sc;
                }
            }
            TraceEvent::TxAbortBlame {
                func,
                name,
                tier,
                bc,
                reason,
                scope,
                attempt,
                word_addr: _,
                line: _,
                set,
                set_ways,
                read_fault,
                write_lines,
                write_bytes,
                read_lines,
                read_bytes,
                instructions,
            } => {
                if let Some(i) = func.and_then(|f| usize::try_from(f).ok()).filter(|&i| i < nfuncs)
                {
                    if set.is_some() {
                        set_faults[i] += 1;
                        // The victim set overflowed its ways while the
                        // whole write set still fit: an associativity
                        // conflict the total-line estimator cannot see.
                        if !read_fault && *write_lines < capacity_lines {
                            set_conflict[i] = true;
                        }
                        // The faulting access was a *read* (RTM read-set
                        // tracking): the write-footprint estimator does
                        // not model read sets at all.
                        if *read_fault {
                            read_set[i] = true;
                        }
                        // The write set genuinely exceeded total capacity,
                        // so the estimator's proven lower bound missed
                        // real store traffic (non-IV addressing, nested
                        // loops, …).
                        if !read_fault && *write_lines > capacity_lines {
                            total_overflow[i] = true;
                        }
                        if *tier != Tier::Ftl {
                            unopt_tier[i] = true;
                        }
                    }
                }
                report.sites.push(AbortSite {
                    cycles: *cycles,
                    func: *func,
                    name: name.clone(),
                    tier: *tier,
                    bc: *bc,
                    reason: abort_reason_key(*reason),
                    scope: scope.clone(),
                    attempt: *attempt,
                    set: *set,
                    set_ways: *set_ways,
                    read_fault: *read_fault,
                    write_lines: *write_lines,
                    write_bytes: *write_bytes,
                    read_lines: *read_lines,
                    read_bytes: *read_bytes,
                    instructions: *instructions,
                });
            }
            _ => {}
        }
    }

    // Static half: the seeded audit's scope delta is the prediction.
    let ipa = vm.summaries().clone();
    let scope0 = if arch.uses_transactions() { TxnScope::Nest } else { TxnScope::None };
    let passes = PassConfig::ftl();
    let seed_opts = AuditOptions { verify: false, seed_scope: true };
    let profile = vm.profile().cloned().unwrap_or_default();

    for id in 0..nfuncs {
        let func = vm.funcs[id].clone();
        let fid = id as u32;
        let audit =
            compile_ftl_audited(&func, &mut vm.rt, arch, scope0, passes, seed_opts, Some(&ipa))?;
        let predicted = audit.scope_used != audit.scope_requested;
        let (advice, est_lines, unproven_loops) = match &audit.footprint {
            Some(est) => (
                match est.advice {
                    ScopeAdvice::Keep => "keep".to_owned(),
                    ScopeAdvice::Tile(t) => format!("tile({t})"),
                    ScopeAdvice::Disable => "disable".to_owned(),
                },
                est.loops.iter().map(|l| l.lines_lower_bound).max().unwrap_or(0),
                est.loops.iter().filter(|l| l.trip.is_none() && l.bytes_per_iter > 0).count()
                    as u32,
            ),
            None => ("-".to_owned(), 0, 0),
        };

        let commits = profile.tx_commits.get(&fid).copied().unwrap_or(0);
        let mut aborts = std::collections::BTreeMap::new();
        for ((f, key), n) in &profile.aborts {
            if *f == fid {
                *aborts.entry(key.clone()).or_insert(0) += n;
            }
        }
        let capacity = aborts.get("capacity").copied().unwrap_or(0);
        let total_aborts: u64 = aborts.values().sum();
        let ran_ftl = vm.code[id].ftl.is_some() || ladder_steps[id] > 0 || commits > 0;
        if commits == 0 && total_aborts == 0 && !(predicted && ran_ftl) {
            continue; // no transactional activity and nothing predicted
        }

        let verdict = match (predicted, capacity > 0) {
            (true, true) => "predicted-abort-and-aborted",
            (true, false) => "over-prediction",
            (false, true) => "under-prediction",
            (false, false) => "predicted-safe-and-safe",
        };
        let explanation = if verdict == "under-prediction" {
            if set_conflict[id] {
                Some("set-conflict".to_owned())
            } else if read_set[id] {
                Some("read-set".to_owned())
            } else if saw_call[id] {
                Some("callee-traffic".to_owned())
            } else if unopt_tier[id] {
                Some("unopt-tier".to_owned())
            } else if unproven_loops > 0 {
                Some("unproven-trip".to_owned())
            } else if total_overflow[id] {
                Some("uncounted-stores".to_owned())
            } else {
                None
            }
        } else {
            None
        };

        report.rows.push(AbortsFnRow {
            func: fid,
            name: func.name.clone(),
            commits,
            commit_write_max: profile.commit_footprint.get(&fid).map_or(0, |h| h.max),
            commit_read_max: profile.commit_read_footprint.get(&fid).map_or(0, |h| h.max),
            aborts,
            capacity,
            set_faults: set_faults[id],
            abort_write_max: profile.abort_footprint.get(&fid).map_or(0, |h| h.max),
            abort_read_max: profile.abort_read_footprint.get(&fid).map_or(0, |h| h.max),
            ladder_steps: ladder_steps[id],
            saw_call: saw_call[id],
            final_scope: format!("{:?}", vm.code[id].scope),
            scope_requested: format!("{:?}", audit.scope_requested),
            scope_seeded: format!("{:?}", audit.scope_used),
            predicted_abort: predicted,
            advice,
            est_lines,
            unproven_loops,
            verdict: verdict.to_owned(),
            explanation,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hot loop whose write set provably overflows the 256KB ROT write
    /// cache — the trip count is a compile-time constant, so the estimator
    /// must predict the overflow and the run must take capacity aborts: a
    /// true positive.
    const OVERFLOW_SRC: &str = "
        var a = new Array(40000);
        function smash() {
            var s = 0;
            for (var i = 0; i < 40000; i++) { a[i] = i; s += i; }
            return s;
        }
        function run() { return smash(); }
    ";

    /// The same overflow with a runtime-valued loop bound: the estimator's
    /// lower bound only engages on constant trips, so it cannot predict
    /// this abort — an under-prediction, explained as `unproven-trip`.
    const UNPROVEN_SRC: &str = "
        var N = 40000;
        var a = new Array(N);
        function smash(seed) {
            var s = 0;
            for (var i = 0; i < N; i++) { a[i] = (i ^ seed) & 1023; s += i; }
            return s;
        }
        function run() { return smash(7); }
    ";

    /// A small, bounded loop: no overflow predicted, none observed.
    const SAFE_SRC: &str = "
        var a = new Array(64);
        function tiny() {
            var s = 0;
            for (var i = 0; i < 64; i++) { a[i] = i; s += i; }
            return s;
        }
        function run() { return tiny(); }
    ";

    #[test]
    fn overflow_workload_is_a_true_positive_with_blame_sites() {
        let report = aborts_source(OVERFLOW_SRC, Architecture::NoMap, 150).unwrap();
        let smash = report
            .rows
            .iter()
            .find(|r| r.name == "smash")
            .expect("smash has transactional activity");
        assert_eq!(smash.verdict, "predicted-abort-and-aborted", "{}", smash.render());
        assert!(smash.capacity > 0);
        assert!(smash.ladder_steps > 0);
        assert!(smash.predicted_abort);
        assert!(smash.advice.starts_with("tile("), "{}", smash.render());
        assert!(smash.est_lines > report.capacity_lines, "{}", smash.render());
        // Capacity aborts carry a concrete fault site.
        let capacity_sites: Vec<_> =
            report.sites.iter().filter(|s| s.reason == "capacity").collect();
        assert!(!capacity_sites.is_empty());
        for s in &capacity_sites {
            assert!(s.set.is_some(), "{}", s.render());
            assert!(s.set_ways > 0);
            assert!(s.write_lines > 0);
            assert_eq!(s.write_bytes, s.write_lines * report.line_bytes);
        }
        assert_eq!(report.unexplained_under_predictions(), 0, "{}", report.render(10));
    }

    #[test]
    fn runtime_bounded_overflow_is_an_explained_under_prediction() {
        let report = aborts_source(UNPROVEN_SRC, Architecture::NoMap, 150).unwrap();
        let smash = report
            .rows
            .iter()
            .find(|r| r.name == "smash")
            .expect("smash has transactional activity");
        assert_eq!(smash.verdict, "under-prediction", "{}", smash.render());
        assert!(!smash.predicted_abort);
        assert!(smash.capacity > 0);
        assert_eq!(smash.advice, "keep", "{}", smash.render());
        assert!(smash.unproven_loops > 0, "{}", smash.render());
        assert_eq!(smash.explanation.as_deref(), Some("unproven-trip"), "{}", smash.render());
        assert_eq!(report.unexplained_under_predictions(), 0, "{}", report.render(10));
    }

    #[test]
    fn safe_workload_is_a_true_negative() {
        let report = aborts_source(SAFE_SRC, Architecture::NoMap, 150).unwrap();
        let tiny =
            report.rows.iter().find(|r| r.name == "tiny").expect("tiny commits transactions");
        assert_eq!(tiny.verdict, "predicted-safe-and-safe", "{}", tiny.render());
        assert!(tiny.commits > 0);
        assert_eq!(tiny.capacity, 0);
        assert_eq!(report.unexplained_under_predictions(), 0);
    }

    #[test]
    fn report_renders_and_serializes_stably() {
        let report = aborts_source(OVERFLOW_SRC, Architecture::NoMap, 100).unwrap();
        let text = report.render(5);
        assert!(text.starts_with("== calibration"));
        assert!(text.contains("== per-abort blame"));
        assert!(text.trim_end().ends_with(&format!("aborts: {}", report.summary())));
        let json = report.to_json(Architecture::NoMap).render();
        for key in ["\"arch\"", "\"capacity_lines\"", "\"rows\"", "\"sites\"", "\"unexplained\""] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn rtm_runs_report_read_footprints() {
        let report = aborts_source(OVERFLOW_SRC, Architecture::NoMapRtm, 150).unwrap();
        // RTM tracks the read set; committed or aborted transactions of the
        // hot function must surface a nonzero read footprint somewhere.
        let any_read = report.rows.iter().any(|r| r.commit_read_max > 0 || r.abort_read_max > 0)
            || report.sites.iter().any(|s| s.read_bytes > 0);
        assert!(any_read, "{}", report.render(10));
    }
}
