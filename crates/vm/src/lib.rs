//! The NoMap virtual machine: a four-tier MiniJS engine (Interpreter →
//! Baseline → DFG → FTL) with profiling, on-stack-replacement exits,
//! hardware-transaction support and per-category execution statistics —
//! everything needed to regenerate the paper's tables and figures.
//!
//! # Quickstart
//!
//! ```
//! use nomap_vm::{Architecture, Vm};
//!
//! let src = "
//!     function sum(a, n) {
//!         var s = 0;
//!         for (var i = 0; i < n; i++) { s += a[i]; }
//!         return s;
//!     }
//!     var data = new Array(100);
//!     for (var j = 0; j < 100; j++) { data[j] = j; }
//!     function run() { return sum(data, 100); }
//! ";
//! let mut vm = Vm::new(src, Architecture::NoMap)?;
//! vm.run_main()?;                       // top-level setup
//! let warm = vm.call("run", &[])?;      // interpreter tier
//! for _ in 0..200 { vm.call("run", &[])?; }  // tiers up to FTL
//! vm.reset_stats();
//! let v = vm.call("run", &[])?;         // measured, steady state
//! assert_eq!(v, warm);
//! assert!(vm.stats.total_insts() > 0);
//! # Ok::<(), nomap_vm::VmError>(())
//! ```

mod aborts;
mod error;
mod exec;
mod interp;
mod ipa_report;
mod lint;
mod profiler;
mod prove;
mod tiering;
mod vm;

pub use aborts::{aborts_source, AbortSite, AbortsFnRow, AbortsReport};
pub use error::VmError;
pub use ipa_report::{ipa_source, IpaFnReport, IpaReport};
pub use lint::{lint_source, LintReport};
pub use nomap_core::{Architecture, AuditOptions, TxnScope};
pub use nomap_hostprof::OpcodeCensus;
pub use nomap_ir::passes::PassConfig;
pub use nomap_machine::{
    CheckKind, CycleLedger, ExecStats, InstCategory, RegionKey, RegionKind, Tier, TxCharacter,
};
pub use nomap_profile::{bench_diff, BenchRows, HotSpotReport, ProfileData};
pub use nomap_runtime::Value;
pub use nomap_trace::{obj, JsonValue, JsonlSink, Metrics, Recorded, TraceEvent, Tracer};
pub use nomap_verify::{DiagCode, Diagnostic, Severity};
pub use prove::{prove_source, CensusClass, CensusRow, ProveReport};
pub use tiering::{TierLimit, TierThresholds};
pub use vm::{Vm, VmConfig};
