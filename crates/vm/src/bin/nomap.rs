//! `nomap` — command-line driver for the NoMap VM.
//!
//! ```text
//! nomap run <file.js> [--arch <name>] [--tier <cap>] [--warmup N] [--stats]
//! nomap disasm <file.js> <function> [--arch <name>] [--tier <baseline|dfg|ftl>]
//! nomap archs
//! ```
//!
//! The script's top level runs once; if it defines `run()`, that function is
//! warmed to steady state and measured.

use std::process::ExitCode;

use nomap_vm::{Architecture, CheckKind, InstCategory, Tier, TierLimit, Vm, VmConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("archs") => {
            for a in Architecture::ALL {
                println!("{}", a.name());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage:\n  nomap run <file.js> [--arch <name>] [--tier <cap>] [--warmup N] [--stats]\n  nomap disasm <file.js> <function> [--arch <name>] [--tier <baseline|dfg|ftl>]\n  nomap archs"
            );
            ExitCode::from(2)
        }
    }
}

fn parse_arch(s: &str) -> Option<Architecture> {
    Architecture::ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(s))
}

fn parse_tier_limit(s: &str) -> Option<TierLimit> {
    Some(match s.to_ascii_lowercase().as_str() {
        "interpreter" | "interp" => TierLimit::Interpreter,
        "baseline" => TierLimit::Baseline,
        "dfg" => TierLimit::Dfg,
        "ftl" => TierLimit::Ftl,
        _ => return None,
    })
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn build_vm(args: &[String]) -> Result<(Vm, bool), String> {
    let file = args.first().ok_or("missing script path")?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let arch = match flag_value(args, "--arch") {
        Some(s) => parse_arch(s).ok_or_else(|| format!("unknown architecture `{s}`"))?,
        None => Architecture::NoMap,
    };
    let mut config = VmConfig::new(arch);
    if let Some(s) = flag_value(args, "--tier") {
        config.tier_limit =
            parse_tier_limit(s).ok_or_else(|| format!("unknown tier cap `{s}`"))?;
    }
    let vm = Vm::with_config(&src, config).map_err(|e| e.to_string())?;
    let stats = args.iter().any(|a| a == "--stats");
    Ok((vm, stats))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let (mut vm, want_stats) = match build_vm(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warmup: u32 = flag_value(args, "--warmup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    if let Err(e) = vm.run_main() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", vm.output());
    if vm.program.function_ids.contains_key("run") {
        let mut last = None;
        for _ in 0..warmup {
            match vm.call("run", &[]) {
                Ok(v) => last = Some(v),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        vm.reset_stats();
        match vm.call("run", &[]) {
            Ok(v) => {
                println!("run() = {v:?}");
                last = Some(v);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        let _ = last;
    }
    if want_stats {
        let s = &vm.stats;
        println!("--- steady-state statistics ({}) ---", vm.config.arch.name());
        println!("instructions : {}", s.total_insts());
        for c in InstCategory::ALL {
            println!("  {:<8}   : {}", format!("{c:?}"), s.insts(c));
        }
        println!("cycles       : {} (TM {}, non-TM {})", s.total_cycles(), s.cycles_tm, s.cycles_non_tm);
        println!("checks       : {}", s.total_checks());
        for k in CheckKind::ALL {
            println!("  {:<9}  : {}", format!("{k:?}"), s.checks(k));
        }
        println!(
            "transactions : {} begun, {} committed, {} aborted",
            s.tx_begun,
            s.tx_committed,
            s.total_aborts()
        );
        println!("deopts       : {}", s.deopts);
    }
    ExitCode::SUCCESS
}

fn cmd_disasm(args: &[String]) -> ExitCode {
    let func = match args.get(1) {
        Some(f) => f.clone(),
        None => {
            eprintln!("error: missing function name");
            return ExitCode::from(2);
        }
    };
    let (mut vm, _) = match build_vm(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tier = match flag_value(args, "--tier") {
        Some("baseline") => Tier::Baseline,
        Some("dfg") => Tier::Dfg,
        None | Some("ftl") => Tier::Ftl,
        Some(other) => {
            eprintln!("error: unknown tier `{other}`");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = vm.run_main() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if vm.program.function_ids.contains_key("run") {
        for _ in 0..150 {
            if vm.call("run", &[]).is_err() {
                break;
            }
        }
    }
    match vm.disassemble(&func, tier) {
        Some(text) => {
            println!("; {} at {tier:?} under {}", func, vm.config.arch.name());
            print!("{text}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "error: `{func}` has no {tier:?} code (not hot enough, or unknown function)"
            );
            ExitCode::FAILURE
        }
    }
}
