//! `nomap lint` — static analysis of a MiniJS program without measuring it.
//!
//! Linting compiles every function of the program through the *audited*
//! tier pipelines (DFG, FTL at the architecture's transaction scope, and
//! the transaction-aware callee variant) with the full `nomap-verify`
//! gauntlet between every stage, and collects the structured diagnostics.
//! An optional warmup run of the guest program first populates the
//! profiles, so the lint sees the same speculative IR a real run would
//! JIT — without warmup, unprofiled sites fall back to runtime calls and
//! much less IR exists to verify.

use nomap_core::{
    audit_summaries, compile_dfg_audited, compile_ftl_audited, compile_txn_callee_audited,
    Architecture, AuditOptions, TxnScope,
};
use nomap_ir::passes::PassConfig;
use nomap_verify::{has_errors, Diagnostic};

use crate::error::VmError;
use crate::vm::{Vm, VmConfig};

/// What one lint pass over a program found.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Functions analyzed (audited compilations may be several per
    /// function: DFG + FTL + callee variant).
    pub functions: usize,
    /// Total verification stages run across all compilations.
    pub stages: usize,
    /// Every finding, warnings included, in function order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when no *error* diagnostics fired (warnings allowed).
    pub fn clean(&self) -> bool {
        !has_errors(&self.diagnostics)
    }

    /// Error findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }
}

/// Lints `source` under `arch`: every function, audited at every tier.
///
/// `warmup` runs the guest that many extra times through its `run()`
/// entry (after the top level) so profiles are realistic; `0` lints the
/// unprofiled program. Guest runtime errors during warmup do not fail the
/// lint — partial profiles are still better than none.
///
/// # Errors
///
/// Returns [`VmError::Compile`] when `source` does not parse, or
/// [`VmError::Jit`] when IR construction itself fails. Verifier findings
/// are *not* errors here; they are the report's payload.
pub fn lint_source(source: &str, arch: Architecture, warmup: u32) -> Result<LintReport, VmError> {
    // Plain config: the warmup must behave exactly like an unaudited run.
    let mut config = VmConfig::new(arch);
    config.sanitize = false;
    config.seed_scope = false;
    let mut vm = Vm::with_config(source, config)?;
    if warmup > 0 {
        let _ = vm.run_main();
        if vm.program.function_ids.contains_key("run") {
            for _ in 0..warmup {
                if vm.call("run", &[]).is_err() {
                    break;
                }
            }
        }
    }

    let scope = if arch.uses_transactions() { TxnScope::Nest } else { TxnScope::None };
    // seed_scope runs the footprint estimator too, so guaranteed capacity
    // aborts surface as warnings in the report.
    let opts = AuditOptions { verify: true, seed_scope: true };
    let passes = PassConfig::ftl();
    let mut report = LintReport::default();

    // The interprocedural summary table every compile below consults is
    // itself translation-validated first (stage `ipa-tv`).
    let ipa = vm.summaries().clone();
    report.stages += 1;
    report.diagnostics.extend(audit_summaries(&vm.program, &ipa));

    for id in 0..vm.funcs.len() {
        let func = vm.funcs[id].clone();
        report.functions += 1;

        let dfg = compile_dfg_audited(&func, &mut vm.rt, opts, Some(&ipa))?;
        report.stages += dfg.stages;
        report.diagnostics.extend(dfg.diagnostics);

        let ftl = compile_ftl_audited(&func, &mut vm.rt, arch, scope, passes, opts, Some(&ipa))?;
        report.stages += ftl.stages;
        report.diagnostics.extend(ftl.diagnostics);

        if arch.uses_transactions() {
            let callee =
                compile_txn_callee_audited(&func, &mut vm.rt, arch, passes, opts, Some(&ipa))?;
            report.stages += callee.stages;
            report.diagnostics.extend(callee.diagnostics);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        function sum(a, n) {
            var s = 0;
            for (var i = 0; i < n; i++) { s += a[i]; }
            return s;
        }
        var data = new Array(64);
        for (var j = 0; j < 64; j++) { data[j] = j; }
        function run() { return sum(data, 64); }
    ";

    #[test]
    fn lint_clean_program_is_clean() {
        let report = lint_source(SRC, Architecture::NoMap, 150).unwrap();
        assert!(report.clean(), "{:?}", report.diagnostics);
        assert!(report.functions >= 2); // main + sum + run
        assert!(report.stages > 30, "only {} stages", report.stages);
    }

    #[test]
    fn lint_runs_on_every_architecture_without_warmup() {
        for arch in Architecture::ALL {
            let report = lint_source(SRC, arch, 0).unwrap();
            assert!(report.clean(), "{arch:?}: {:?}", report.diagnostics);
        }
    }

    #[test]
    fn lint_rejects_bad_source() {
        assert!(matches!(
            lint_source("function f( {", Architecture::NoMap, 0),
            Err(VmError::Compile(_))
        ));
    }
}
