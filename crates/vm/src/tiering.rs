//! Tier-up policy.

use nomap_machine::Tier;

/// Highest tier a configuration may use (paper Table I caps tiers to
/// measure each one's contribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TierLimit {
    /// Interpreter only.
    Interpreter,
    /// Interpreter + Baseline.
    Baseline,
    /// Up to DFG.
    Dfg,
    /// Up to FTL (the default).
    Ftl,
}

impl TierLimit {
    /// True when `tier` is allowed under this limit.
    pub fn allows(self, tier: Tier) -> bool {
        match tier {
            Tier::Interpreter | Tier::Runtime => true,
            Tier::Baseline => self >= TierLimit::Baseline,
            Tier::Dfg => self >= TierLimit::Dfg,
            Tier::Ftl => self >= TierLimit::Ftl,
        }
    }
}

/// When functions get promoted. Hotness is `call_count + back_edges / 10`,
/// echoing JavaScriptCore's execution-count heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierThresholds {
    /// Hotness to compile Baseline.
    pub baseline: u64,
    /// Hotness to compile DFG.
    pub dfg: u64,
    /// Hotness to compile FTL.
    pub ftl: u64,
}

impl Default for TierThresholds {
    fn default() -> Self {
        TierThresholds { baseline: 4, dfg: 20, ftl: 60 }
    }
}

impl TierThresholds {
    /// The hotness metric.
    pub fn hotness(call_count: u64, back_edges: u64) -> u64 {
        call_count + back_edges / 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_are_ordered() {
        assert!(TierLimit::Ftl.allows(Tier::Dfg));
        assert!(TierLimit::Dfg.allows(Tier::Baseline));
        assert!(!TierLimit::Baseline.allows(Tier::Dfg));
        assert!(!TierLimit::Interpreter.allows(Tier::Baseline));
        assert!(TierLimit::Interpreter.allows(Tier::Interpreter));
    }

    #[test]
    fn hotness_mixes_calls_and_loops() {
        assert_eq!(TierThresholds::hotness(5, 100), 15);
    }
}
