//! `nomap prove` — the static-vs-dynamic check census.
//!
//! The paper's Fig. 1 observation is that FTL checks almost never fail
//! dynamically; the proof-carrying elision pass (`nomap_ir::passes::
//! prove_checks`) turns a subset of that observation into theorems. The
//! census closes the loop: it profiles a real run of the guest (so the
//! dynamic `check:<kind>` tallies and deopt/abort tables are populated),
//! then recompiles every function at the DFG and FTL tiers and joins the
//! static verdicts against the dynamic counts, classifying every
//! (function × check-kind) site group as proved-safe, dynamically quiet
//! but unproved (elision headroom — the [`DiagCode::CheckQuietUnproved`]
//! warning), dynamically failing, statically proved-fail, or cold.

use std::collections::BTreeMap;

use nomap_core::{compile_dfg_with_report, compile_ftl_with_report, Architecture, TxnScope};
use nomap_ir::passes::PassConfig;
use nomap_ir::ProveStats;
use nomap_machine::CheckKind;
use nomap_profile::ProfileData;
use nomap_trace::{check_name, obj, JsonValue};
use nomap_verify::{DiagCode, Diagnostic};

use crate::error::VmError;
use crate::vm::{Vm, VmConfig};

/// How the census classifies one (function × check-kind) site group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CensusClass {
    /// The analysis proved a reachable check of this kind must *fail* —
    /// the speculation it protects is statically dead. When the group was
    /// also executed, `nomap prove` exits nonzero.
    ProvedFail,
    /// Observed failing dynamically (a deopt or check-abort fired).
    DynamicallyFailing,
    /// Every static check of this kind was proved infeasible and elided.
    ProvedSafe,
    /// Executed at runtime without a single failure, yet the analysis
    /// could not prove every check safe — candidate for a stronger
    /// abstract domain.
    QuietUnproved,
    /// Never executed in the measurement window and not fully proved.
    Cold,
}

impl CensusClass {
    /// Stable kebab-case identifier (used in text and JSON output).
    pub fn as_str(&self) -> &'static str {
        match self {
            CensusClass::ProvedFail => "proved-fail",
            CensusClass::DynamicallyFailing => "dynamically-failing",
            CensusClass::ProvedSafe => "proved-safe",
            CensusClass::QuietUnproved => "quiet-unproved",
            CensusClass::Cold => "cold",
        }
    }
}

/// One census row: all checks of one kind in one function, static verdicts
/// (summed over the DFG and FTL compilations) joined with the dynamic
/// profile. Dynamic counts are per function — the profiler does not split
/// executed checks by tier.
#[derive(Debug, Clone)]
pub struct CensusRow {
    /// Function id (the VM's function table index).
    pub func: u32,
    /// Function name.
    pub name: String,
    /// Check kind this row aggregates.
    pub kind: CheckKind,
    /// Checks proved infeasible, DFG + FTL.
    pub proved_safe: u32,
    /// Checks proved to fire on every execution reaching them.
    pub proved_fail: u32,
    /// Checks the analysis could not decide.
    pub unknown: u32,
    /// Checks actually deleted.
    pub elided: u32,
    /// Dynamic executions of this check kind in this function.
    pub executed: u64,
    /// Dynamic failures: deopts plus transaction check-aborts of this kind.
    pub failures: u64,
    /// The classification the joined evidence supports.
    pub class: CensusClass,
}

impl CensusRow {
    fn classify(&self) -> CensusClass {
        if self.proved_fail > 0 {
            CensusClass::ProvedFail
        } else if self.failures > 0 {
            CensusClass::DynamicallyFailing
        } else if self.unknown == 0 && self.proved_safe > 0 {
            CensusClass::ProvedSafe
        } else if self.executed > 0 {
            CensusClass::QuietUnproved
        } else {
            CensusClass::Cold
        }
    }

    /// One stable, aligned text line (the `--census` table body).
    pub fn render(&self) -> String {
        format!(
            "{:<16} {:<9} {:<20} {:>5} {:>5} {:>5} {:>7} {:>10} {:>9}",
            self.name,
            check_name(self.kind),
            self.class.as_str(),
            self.proved_safe,
            self.proved_fail,
            self.unknown,
            self.elided,
            self.executed,
            self.failures
        )
    }

    /// JSON object mirroring [`CensusRow::render`].
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("func", self.func.into()),
            ("name", self.name.as_str().into()),
            ("kind", check_name(self.kind).into()),
            ("class", self.class.as_str().into()),
            ("proved_safe", self.proved_safe.into()),
            ("proved_fail", self.proved_fail.into()),
            ("unknown", self.unknown.into()),
            ("elided", self.elided.into()),
            ("executed", self.executed.into()),
            ("failures", self.failures.into()),
        ])
    }
}

/// What one census pass over a program found.
#[derive(Debug, Default)]
pub struct ProveReport {
    /// Functions recompiled (each at the DFG and FTL tiers).
    pub functions: usize,
    /// Aggregate prove-pass tallies across all DFG compilations.
    pub dfg: ProveStats,
    /// Aggregate prove-pass tallies across all FTL compilations.
    pub ftl: ProveStats,
    /// Census rows, one per (function, check kind) with any static or
    /// dynamic activity, in (func, kind-index) order.
    pub rows: Vec<CensusRow>,
    /// Census findings: one [`DiagCode::CheckQuietUnproved`] warning per
    /// quiet-unproved row (all warnings — the census never errors).
    pub diagnostics: Vec<Diagnostic>,
}

impl ProveReport {
    /// Total checks deleted across both tiers.
    pub fn total_elided(&self) -> u32 {
        self.dfg.total_elided() + self.ftl.total_elided()
    }

    /// Total checks proved infeasible across both tiers.
    pub fn total_proved_safe(&self) -> u32 {
        self.dfg.total_proved_safe() + self.ftl.total_proved_safe()
    }

    /// Total undecided checks across both tiers.
    pub fn total_unknown(&self) -> u32 {
        self.dfg.total_unknown() + self.ftl.total_unknown()
    }

    /// Total checks proved to always fail across both tiers.
    pub fn total_proved_fail(&self) -> u32 {
        self.dfg.total_proved_fail() + self.ftl.total_proved_fail()
    }

    /// Rows whose checks are statically proved to fail *and* were reached
    /// dynamically — the condition `nomap prove` gates on.
    pub fn reachable_proved_fail(&self) -> usize {
        self.rows.iter().filter(|r| r.class == CensusClass::ProvedFail && r.executed > 0).count()
    }

    /// True when no reachable proved-fail group exists.
    pub fn clean(&self) -> bool {
        self.reachable_proved_fail() == 0
    }

    /// One-line totals summary (used with and without `--census`).
    pub fn summary(&self, arch: Architecture) -> String {
        format!(
            "prove: {} function(s) under {}: dfg {} safe / {} fail / {} unknown / {} elided; ftl {} safe / {} fail / {} unknown / {} elided",
            self.functions,
            arch.name(),
            self.dfg.total_proved_safe(),
            self.dfg.total_proved_fail(),
            self.dfg.total_unknown(),
            self.dfg.total_elided(),
            self.ftl.total_proved_safe(),
            self.ftl.total_proved_fail(),
            self.ftl.total_unknown(),
            self.ftl.total_elided()
        )
    }

    /// The full census table.
    pub fn render_census(&self) -> String {
        let mut out = format!(
            "{:<16} {:<9} {:<20} {:>5} {:>5} {:>5} {:>7} {:>10} {:>9}\n",
            "function", "kind", "class", "safe", "fail", "unkn", "elided", "executed", "failures"
        );
        for row in &self.rows {
            out.push_str(&row.render());
            out.push('\n');
        }
        out
    }

    /// Whole-report JSON (the CI census artifact).
    pub fn to_json(&self, arch: Architecture) -> JsonValue {
        let tier = |s: &ProveStats| {
            obj(vec![
                ("proved_safe", s.total_proved_safe().into()),
                ("proved_fail", s.total_proved_fail().into()),
                ("unknown", s.total_unknown().into()),
                ("elided", s.total_elided().into()),
            ])
        };
        obj(vec![
            ("arch", arch.name().into()),
            ("functions", self.functions.into()),
            ("dfg", tier(&self.dfg)),
            ("ftl", tier(&self.ftl)),
            ("reachable_proved_fail", self.reachable_proved_fail().into()),
            ("rows", JsonValue::Array(self.rows.iter().map(CensusRow::to_json).collect())),
        ])
    }
}

fn fold(into: &mut ProveStats, s: &ProveStats) {
    for i in 0..5 {
        into.proved_safe[i] += s.proved_safe[i];
        into.proved_fail[i] += s.proved_fail[i];
        into.unknown[i] += s.unknown[i];
        into.elided[i] += s.elided[i];
    }
}

/// Dynamic failures of `kind` in `func`: taken deopt sites plus
/// transaction check-aborts under the profiler's `check:<kind>` key.
fn dynamic_failures(profile: &ProfileData, func: u32, kind: CheckKind) -> u64 {
    let deopts: u64 = profile
        .deopt_sites
        .iter()
        .filter(|((f, _), site)| *f == func && site.kind == kind)
        .map(|(_, site)| site.count)
        .sum();
    let aborts =
        profile.aborts.get(&(func, format!("check:{}", check_name(kind)))).copied().unwrap_or(0);
    deopts + aborts
}

/// Runs the census for `source` under `arch`.
///
/// The guest's top level runs once with profiling enabled, then `run()`
/// (when defined) is called `warmup` times — this both populates the
/// dynamic check tallies and warms the VM's speculation profiles so the
/// recompilations below see the same IR a real run would JIT. Guest
/// runtime errors during warmup do not fail the census.
///
/// # Errors
///
/// Returns [`VmError::Compile`] when `source` does not parse, or
/// [`VmError::Jit`] when IR construction fails during recompilation.
pub fn prove_source(source: &str, arch: Architecture, warmup: u32) -> Result<ProveReport, VmError> {
    let mut config = VmConfig::new(arch);
    config.sanitize = false;
    config.seed_scope = false;
    let mut vm = Vm::with_config(source, config)?;
    vm.enable_profiling();
    let _ = vm.run_main();
    if vm.program.function_ids.contains_key("run") {
        for _ in 0..warmup {
            if vm.call("run", &[]).is_err() {
                break;
            }
        }
    }
    let profile = vm.profile().expect("profiling enabled").clone();

    let scope = if arch.uses_transactions() { TxnScope::Nest } else { TxnScope::None };
    let passes = PassConfig::ftl();
    // Recompile under the program's interprocedural summary table — the
    // same context a real run's JIT compiles use — so the census verdicts
    // reflect cross-function reasoning.
    let ipa = vm.summaries().clone();
    let mut report = ProveReport::default();
    // (func, kind index) -> [safe, fail, unknown, elided], both tiers.
    let mut sites: BTreeMap<(u32, usize), [u32; 4]> = BTreeMap::new();
    let mut names: BTreeMap<u32, String> = BTreeMap::new();
    for id in 0..vm.funcs.len() {
        let func = vm.funcs[id].clone();
        report.functions += 1;
        names.insert(id as u32, func.name.clone());

        let (_, dfg) = compile_dfg_with_report(&func, &mut vm.rt, Some(&ipa))?;
        let (_, ftl) = compile_ftl_with_report(&func, &mut vm.rt, arch, scope, passes, Some(&ipa))?;
        fold(&mut report.dfg, &dfg.prove);
        fold(&mut report.ftl, &ftl.prove);
        for ki in 0..5 {
            let safe = dfg.prove.proved_safe[ki] + ftl.prove.proved_safe[ki];
            let fail = dfg.prove.proved_fail[ki] + ftl.prove.proved_fail[ki];
            let unknown = dfg.prove.unknown[ki] + ftl.prove.unknown[ki];
            let elided = dfg.prove.elided[ki] + ftl.prove.elided[ki];
            if safe + fail + unknown + elided > 0 {
                let e = sites.entry((id as u32, ki)).or_default();
                e[0] += safe;
                e[1] += fail;
                e[2] += unknown;
                e[3] += elided;
            }
        }
    }
    // Dynamically active sites that never produced a static check (e.g.
    // functions only ever executed at Baseline) still get a census row.
    for &(func, kind) in profile.checks.keys() {
        if func < vm.funcs.len() as u32 {
            sites.entry((func, kind.index())).or_default();
        }
    }

    for ((func, ki), [safe, fail, unknown, elided]) in sites {
        let kind = CheckKind::ALL[ki];
        let name = names.get(&func).cloned().unwrap_or_else(|| format!("#{func}"));
        let mut row = CensusRow {
            func,
            name,
            kind,
            proved_safe: safe,
            proved_fail: fail,
            unknown,
            elided,
            executed: profile.checks.get(&(func, kind)).copied().unwrap_or(0),
            failures: dynamic_failures(&profile, func, kind),
            class: CensusClass::Cold,
        };
        row.class = row.classify();
        if row.class == CensusClass::QuietUnproved {
            let mut d = Diagnostic::new(
                DiagCode::CheckQuietUnproved,
                &row.name,
                None,
                None,
                format!(
                    "{} {} check(s) executed {} time(s) without failing but {} remain unproved",
                    row.unknown + row.proved_safe,
                    check_name(kind),
                    row.executed,
                    row.unknown
                ),
            );
            d.stage = "census".to_owned();
            report.diagnostics.push(d);
        }
        report.rows.push(row);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        function sum(a, n) {
            var s = 0;
            for (var i = 0; i < n; i++) { s += a[i]; }
            return s;
        }
        var data = new Array(64);
        for (var j = 0; j < 64; j++) { data[j] = j; }
        function run() { return sum(data, 64); }
    ";

    #[test]
    fn census_joins_static_and_dynamic_evidence() {
        let report = prove_source(SRC, Architecture::NoMap, 150).unwrap();
        assert!(report.clean(), "unexpected reachable proved-fail rows");
        assert!(report.functions >= 3, "main + sum + run");
        assert!(!report.rows.is_empty());
        // The hot loop's checks executed; the join must see them.
        assert!(report.rows.iter().any(|r| r.executed > 0), "{:#?}", report.rows);
        // Every census diagnostic is a warning, never an error.
        assert!(report.diagnostics.iter().all(|d| !d.is_error()));
        // Rows are classified consistently with their own tallies.
        for r in &report.rows {
            assert_eq!(r.class, r.classify());
        }
    }

    #[test]
    fn counting_loop_gets_elisions_on_every_architecture() {
        let src = "
            function f(n) { var s = 0; for (var i = 0; i < n; i++) { s += i; } return s; }
            function run() { return f(200); }
        ";
        for arch in Architecture::ALL {
            let report = prove_source(src, arch, 150).unwrap();
            assert!(report.total_elided() > 0, "{arch:?}: no elisions\n{:#?}", report.rows);
            assert!(report.clean(), "{arch:?}");
        }
    }

    #[test]
    fn report_serializes_with_stable_keys() {
        let report = prove_source(SRC, Architecture::NoMap, 50).unwrap();
        let json = report.to_json(Architecture::NoMap).render();
        for key in ["\"arch\"", "\"functions\"", "\"dfg\"", "\"ftl\"", "\"rows\"", "\"class\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = report.render_census();
        assert!(text.starts_with("function"));
        assert!(report.summary(Architecture::NoMap).starts_with("prove:"));
    }

    #[test]
    fn prove_rejects_bad_source() {
        assert!(matches!(
            prove_source("function f( {", Architecture::NoMap, 0),
            Err(VmError::Compile(_))
        ));
    }
}
