//! The machine-code executor: runs [`MachInst`] code for the Baseline, DFG
//! and FTL tiers, models caches and HTM, performs OSR exits
//! (deoptimization) and transactional aborts, and attributes every dynamic
//! instruction to the paper's categories.

use std::rc::Rc;

use nomap_bytecode::{FuncId, Intrinsic};
use nomap_jit::{CompiledFn, StackMapEntry, ValueRepr};
use nomap_machine::{
    AbortReason, CheckKind, HtmKind, InstCategory, MReg, MachInst, RegionKind, Tier,
};
use nomap_runtime::{Access, Value};
use nomap_trace::TraceEvent;

use crate::error::{Flow, VmError};
use crate::profiler::ReplayMode;
use crate::vm::{TxFallback, Vm};

/// One executing machine frame (lives on the Rust stack across JS calls).
struct Frame {
    code: Rc<CompiledFn>,
    pc: usize,
    regs: Vec<u64>,
}

/// Runs `code` with `args`, returning the boxed result.
pub(crate) fn run_machine(
    vm: &mut Vm,
    code: Rc<CompiledFn>,
    args: &[Value],
) -> Result<Value, Flow> {
    let saved_stack = vm.stack_top;
    let saved_mode = vm.profiler_enter(code.func.0, code.tier);
    let mut frame = enter_frame(vm, code, args);
    let result = exec_loop(vm, &mut frame);
    vm.profiler_exit(saved_mode);
    vm.stack_top = saved_stack;
    result
}

fn enter_frame(vm: &mut Vm, code: Rc<CompiledFn>, args: &[Value]) -> Frame {
    let mut regs = vec![0u64; code.reg_count as usize];
    let mut frame_base = 0;
    if code.frame_words > 0 {
        // Baseline: arguments and locals live in simulated stack memory.
        frame_base = vm.stack_top;
        vm.stack_top += code.frame_words as u64;
        for (i, a) in args.iter().enumerate() {
            vm.rt.mem.write(frame_base + i as u64, a.to_bits());
        }
        regs[0] = frame_base; // FP
        vm.count(&code, args.len() as u64); // prologue stores
    } else {
        for (i, a) in args.iter().enumerate() {
            if 1 + i < regs.len() {
                regs[1 + i] = a.to_bits();
            }
        }
    }
    let _ = frame_base;
    Frame { code, pc: 0, regs }
}

impl Vm {
    /// Attributes `n` dynamic instructions of `code` and advances cycles.
    pub(crate) fn count(&mut self, code: &CompiledFn, n: u64) {
        let in_tx = self.tx.active();
        let cat = if !in_tx {
            match code.tier {
                Tier::Ftl => InstCategory::NoTm,
                _ => InstCategory::NoFtl,
            }
        } else if code.tier == Tier::Ftl
            && (code.txn_callee
                || (code.txn_aware
                    && self.tx_fallback.as_ref().map(|f| f.depth) == Some(self.depth)))
        {
            InstCategory::TmOpt
        } else {
            InstCategory::TmUnopt
        };
        self.stats.add_insts(cat, code.tier, n);
        self.last_tier = code.tier;
        if self.tracer.is_enabled() {
            let name = self.funcs[code.func.0 as usize].name.clone();
            self.tracer.record_residency(&name, code.tier, n);
        }
        let cycles = n * self.timing.per_inst;
        if in_tx {
            self.tx.instructions += n;
        }
        let kind = self.exec_kind(in_tx);
        self.add_cycles(in_tx, cycles, code.func.0, code.tier, kind);
        self.profiler_insts(code.func.0, code.tier, n);
    }

    /// Attributes runtime-helper work (always `NoFTL`, paper §VII-A).
    pub(crate) fn count_runtime(&mut self, n: u64) {
        self.stats.add_insts(InstCategory::NoFtl, Tier::Runtime, n);
        let cycles = n * self.timing.per_inst;
        let in_tx = self.tx.active();
        if in_tx {
            self.tx.instructions += n;
        }
        let (func, _) = self.profiler_ctx();
        let kind = self.exec_kind(in_tx);
        self.add_cycles(in_tx, cycles, func, Tier::Runtime, kind);
        self.profiler_insts(func, Tier::Runtime, n);
    }

    /// Drains the simulated-memory access log into the cache simulator and
    /// (when transactional) the HTM footprint tracking. Returns a capacity
    /// abort if the write/read set no longer fits.
    pub(crate) fn process_memory_traffic(&mut self) -> Option<AbortReason> {
        let mut buf = std::mem::take(&mut self.log_buf);
        self.rt.mem.swap_log(&mut buf);
        let in_tx = self.tx.active();
        let rtm = self.htm.kind == HtmKind::Rtm;
        let (pfunc, ptier) = self.profiler_ctx();
        let kind = self.exec_kind(in_tx);
        let mut abort = None;
        for &acc in &buf {
            match acc {
                Access::Read(addr) => {
                    let (outcome, _) = self.cache.access_word(addr, false, false);
                    let mut cyc = self.timing.mem_cycles(outcome);
                    if in_tx && rtm {
                        cyc += self.timing.rtm_read_extra;
                        if abort.is_none() {
                            if let Err(r) = self.tx.on_read(&self.htm, addr) {
                                abort = Some(r);
                            }
                        }
                    }
                    self.add_cycles(in_tx, cyc, pfunc, ptier, kind);
                }
                Access::Write { addr, old } => {
                    let sw = in_tx;
                    let sw_l1 = sw && rtm;
                    let sw_l2 = sw;
                    let (outcome, _) = self.cache.access_word(addr, sw_l1, sw_l2);
                    let cyc = self.timing.mem_cycles(outcome);
                    if in_tx && abort.is_none() {
                        if let Err(r) = self.tx.on_write(&self.htm, addr, old) {
                            abort = Some(r);
                        }
                    }
                    self.add_cycles(in_tx, cyc, pfunc, ptier, kind);
                }
            }
        }
        buf.clear();
        self.log_buf = buf;
        abort
    }

    /// Performs a transactional abort: rolls memory back, clears
    /// speculative cache state, charges the rollback, updates policy
    /// counters, and returns the unwinding signal.
    pub(crate) fn trigger_abort(&mut self, reason: AbortReason) -> Flow {
        self.stats.add_abort(reason);
        // Blame (fault site, footprints, length) must be sampled before the
        // rollback wipes the speculative sets. Capacity aborts carry the
        // fault site captured by the HTM model at the point of failure;
        // check/SOF aborts get a site-less snapshot of the current sets.
        let blame = if self.tracer.is_enabled() || self.profiler.is_some() {
            Some(self.tx.blame().unwrap_or_else(|| self.tx.snapshot_blame(&self.htm)))
        } else {
            None
        };
        // Roll back (the undo log already holds pre-transaction values).
        let undone = self.tx.abort(&mut self.rt.mem);
        self.rt.mem.clear_log(); // rollback pokes are not program traffic
        self.cache.flash_clear_sw();
        let cycles = self.timing.abort_base + self.timing.abort_per_word * undone as u64;
        let owner = self.tx_fallback.as_ref().map(|f| f.func);
        // Rollback cycles are attributed to what caused the abort: the
        // failed check's kind, or the retry ladder for capacity aborts.
        let abort_kind = match reason {
            AbortReason::Check(k) => RegionKind::Check(k),
            AbortReason::Capacity => RegionKind::TxnRetryLadder,
            AbortReason::StickyOverflow => RegionKind::Check(CheckKind::Overflow),
        };
        let (pfunc, ptier) = self.profiler_ctx();
        let afunc = owner.map(|f| f.0).unwrap_or(pfunc);
        self.add_cycles(false, cycles, afunc, ptier, abort_kind);
        if let Some(b) = blame {
            if let Some(p) = &mut self.profiler {
                p.data.record_abort(afunc, reason, b.write_bytes);
                p.data.record_blame(afunc, b.fault.map(|f| f.set_ways), b.read_bytes);
            }
        }
        if let (Some(b), true) = (blame, self.tracer.is_enabled()) {
            let ev = TraceEvent::TxAbort {
                func: owner.map(|f| f.0),
                reason,
                footprint_bytes: b.write_bytes,
                undone_words: undone as u64,
                instructions: b.instructions,
            };
            let now = self.stats.total_cycles();
            self.tracer.emit(now, move || ev);
            let name = owner
                .map(|f| self.funcs[f.0 as usize].name.clone())
                .unwrap_or_else(|| "<vm>".to_owned());
            let scope = owner
                .map(|f| format!("{:?}", self.code[f.0 as usize].scope))
                .unwrap_or_else(|| "None".to_owned());
            let attempt = owner
                .map(|f| (self.rt.profiles.func(f).capacity_aborts + 1).min(u32::MAX as u64) as u32)
                .unwrap_or(1);
            let ev = TraceEvent::TxAbortBlame {
                func: owner.map(|f| f.0),
                name,
                tier: self.last_tier,
                bc: self.tx_fallback.as_ref().map(|f| f.bc).unwrap_or(0),
                reason,
                scope,
                attempt,
                word_addr: b.fault.map(|f| f.word_addr),
                line: b.fault.map(|f| f.line),
                set: b.fault.map(|f| f.set),
                set_ways: b.fault.map(|f| f.set_ways).unwrap_or(0),
                read_fault: b.fault.is_some_and(|f| !f.is_write),
                write_lines: b.write_lines,
                write_bytes: b.write_bytes,
                read_lines: b.read_lines,
                read_bytes: b.read_bytes,
                instructions: b.instructions,
            };
            self.tracer.emit(now, move || ev);
        }
        if let Some(func) = owner {
            match reason {
                AbortReason::Capacity => {
                    let saw_call = self.tx_saw_call;
                    self.shrink_transactions(func, saw_call);
                }
                AbortReason::Check(_) | AbortReason::StickyOverflow => {
                    self.note_check_abort(func);
                    self.rt.profiles.func_mut(func).deopt_count += 1;
                    self.stats.deopts += 1;
                }
            }
        }
        Flow::TxAbort
    }
}

/// Reboxes a machine register for Baseline-frame materialization.
fn rebox(bits: u64, repr: ValueRepr) -> Value {
    match repr {
        ValueRepr::Boxed => Value::from_bits(bits),
        ValueRepr::I32 => Value::new_int32(bits as u32 as i32),
        ValueRepr::F64 => Value::new_double(f64::from_bits(bits)),
        ValueRepr::Bool => Value::new_bool(bits != 0),
    }
}

/// Switches `frame` to the Baseline tier at `bc` with the given boxed
/// register values (OSR exit / transaction fallback).
fn materialize_baseline(
    vm: &mut Vm,
    frame: &mut Frame,
    func: FuncId,
    bc: u32,
    values: &[Option<Value>],
    mode: ReplayMode,
) {
    let baseline = vm.baseline_code(func);
    // From here to the frame's return, cycles are replay cost: the frame's
    // profiling context switches to Baseline under the given mode (and the
    // materialization work below is charged under it too).
    vm.profiler_frame_switch(func.0, Tier::Baseline, mode);
    let frame_base = vm.stack_top;
    vm.stack_top += baseline.frame_words as u64;
    for (i, v) in values.iter().enumerate() {
        let bits = v.unwrap_or(Value::UNDEFINED).to_bits();
        vm.rt.mem.write(frame_base + i as u64, bits);
    }
    // The OSR algorithm's work: one store per live variable plus fixed
    // overhead (paper §II-B).
    vm.count_runtime(values.len() as u64 + 30);
    let _ = vm.process_memory_traffic(); // deopt runs outside transactions
    let pc = baseline.bc_labels[bc as usize].0 as usize;
    let mut regs = vec![0u64; baseline.reg_count as usize];
    regs[0] = frame_base;
    *frame = Frame { code: baseline, pc, regs };
}

/// Reads the current stack-map entry into boxed values.
fn snapshot(frame: &Frame, entry: &StackMapEntry) -> Vec<Option<Value>> {
    entry
        .regs
        .iter()
        .map(|slot| slot.map(|(r, repr)| rebox(frame.regs[r.0 as usize], repr)))
        .collect()
}

fn exec_loop(vm: &mut Vm, frame: &mut Frame) -> Result<Value, Flow> {
    loop {
        let inst = frame.code.code[frame.pc].clone();
        frame.pc += 1;
        vm.count(&frame.code, 1);
        let r = &mut frame.regs;
        match inst {
            MachInst::MovImm { dst, imm } => r[dst.0 as usize] = imm,
            MachInst::Mov { dst, src } => r[dst.0 as usize] = r[src.0 as usize],
            MachInst::Alu64 { op, dst, a, b } => {
                r[dst.0 as usize] = op.apply(r[a.0 as usize], r[b.0 as usize]);
            }
            MachInst::Alu64Imm { op, dst, a, imm } => {
                r[dst.0 as usize] = op.apply(r[a.0 as usize], imm);
            }
            MachInst::AddI32 { dst, a, b } => {
                int32_arith(vm, r, dst, a, Some(b), |x, y| x.checked_add(y));
            }
            MachInst::SubI32 { dst, a, b } => {
                int32_arith(vm, r, dst, a, Some(b), |x, y| x.checked_sub(y));
            }
            MachInst::MulI32 { dst, a, b } => {
                int32_arith(vm, r, dst, a, Some(b), |x, y| {
                    let wide = x as i64 * y as i64;
                    if wide == 0 && (x < 0 || y < 0) {
                        None // negative zero needs the double representation
                    } else {
                        i32::try_from(wide).ok()
                    }
                });
            }
            MachInst::NegI32 { dst, a } => {
                int32_arith(
                    vm,
                    r,
                    dst,
                    a,
                    None,
                    |x, _| {
                        if x == 0 {
                            None
                        } else {
                            x.checked_neg()
                        }
                    },
                );
            }
            MachInst::FAlu { op, dst, a, b } => {
                r[dst.0 as usize] = op.apply_bits(r[a.0 as usize], r[b.0 as usize]);
            }
            MachInst::FNeg { dst, a } => {
                r[dst.0 as usize] = (-f64::from_bits(r[a.0 as usize])).to_bits();
            }
            MachInst::CvtI32ToF64 { dst, src } => {
                r[dst.0 as usize] = ((r[src.0 as usize] as u32 as i32) as f64).to_bits();
            }
            MachInst::CvtF64ToI32 { dst, src } => {
                let d = f64::from_bits(r[src.0 as usize]);
                r[dst.0 as usize] = (d as i32) as i64 as u64; // saturating cast
            }
            MachInst::UnboxI32 { dst, src } => {
                r[dst.0 as usize] = (r[src.0 as usize] as u32 as i32) as i64 as u64;
            }
            MachInst::ToF64 { dst, src } => {
                let v = Value::from_bits(r[src.0 as usize]);
                let d = if v.is_int32() { v.as_int32() as f64 } else { v.as_double() };
                r[dst.0 as usize] = d.to_bits();
            }
            MachInst::BoxI32 { dst, src } => {
                r[dst.0 as usize] = Value::new_int32(r[src.0 as usize] as u32 as i32).to_bits();
            }
            MachInst::BoxF64 { dst, src } => {
                r[dst.0 as usize] = Value::new_double(f64::from_bits(r[src.0 as usize])).to_bits();
            }
            MachInst::BoxBool { dst, src } => {
                r[dst.0 as usize] = Value::new_bool(r[src.0 as usize] != 0).to_bits();
            }
            MachInst::IAlu32 { op, dst, a, b } => {
                let x = r[a.0 as usize] as u32 as i32;
                let y = r[b.0 as usize] as u32 as i32;
                r[dst.0 as usize] = op.apply(x, y) as i64 as u64;
            }
            MachInst::UShr32 { dst, a, b } => {
                let x = r[a.0 as usize] as u32;
                let y = r[b.0 as usize] as u32 & 31;
                r[dst.0 as usize] = (x.wrapping_shr(y) as i32) as i64 as u64;
            }
            MachInst::MathF64 { intr, dst, args } => {
                let a0 = args.first().map(|m| f64::from_bits(r[m.0 as usize])).unwrap_or(f64::NAN);
                let a1 = args.get(1).map(|m| f64::from_bits(r[m.0 as usize])).unwrap_or(f64::NAN);
                let (val, extra) = exec_math(vm, intr, a0, a1);
                r[dst.0 as usize] = val.to_bits();
                if extra > 0 {
                    vm.count_runtime(extra); // libm call the FTL cannot inline
                }
            }
            MachInst::CmpI64 { dst, a, b, cond } => {
                r[dst.0 as usize] = cond.eval_i64(r[a.0 as usize], r[b.0 as usize]) as u64;
            }
            MachInst::CmpImm { dst, a, imm, cond } => {
                r[dst.0 as usize] = cond.eval_i64(r[a.0 as usize], imm) as u64;
            }
            MachInst::CmpF64 { dst, a, b, cond } => {
                let x = f64::from_bits(r[a.0 as usize]);
                let y = f64::from_bits(r[b.0 as usize]);
                r[dst.0 as usize] = cond.eval_f64(x, y) as u64;
            }
            MachInst::Jump { target } => {
                if (target.0 as usize) < frame.pc && frame.code.tier == Tier::Baseline {
                    vm.rt.profiles.func_mut(frame.code.func).back_edges += 1;
                }
                frame.pc = target.0 as usize;
            }
            MachInst::BranchNz { cond, target } => {
                if r[cond.0 as usize] != 0 {
                    if (target.0 as usize) < frame.pc && frame.code.tier == Tier::Baseline {
                        vm.rt.profiles.func_mut(frame.code.func).back_edges += 1;
                    }
                    frame.pc = target.0 as usize;
                }
            }
            MachInst::BranchZ { cond, target } => {
                if r[cond.0 as usize] == 0 {
                    if (target.0 as usize) < frame.pc && frame.code.tier == Tier::Baseline {
                        vm.rt.profiles.func_mut(frame.code.func).back_edges += 1;
                    }
                    frame.pc = target.0 as usize;
                }
            }
            MachInst::Load { dst, base, offset } => {
                let addr = r[base.0 as usize].wrapping_add_signed(offset);
                r[dst.0 as usize] = vm.rt.mem.read(addr);
                if let Err(flow) = mem_step(vm) {
                    return handle_own_abort(vm, frame, flow);
                }
            }
            MachInst::Store { src, base, offset } => {
                let addr = r[base.0 as usize].wrapping_add_signed(offset);
                vm.rt.mem.write(addr, r[src.0 as usize]);
                if let Err(flow) = mem_step(vm) {
                    return handle_own_abort(vm, frame, flow);
                }
            }
            MachInst::LoadIdx { dst, base, index } => {
                let addr = r[base.0 as usize].wrapping_add(r[index.0 as usize]);
                r[dst.0 as usize] = vm.rt.mem.read(addr);
                if let Err(flow) = mem_step(vm) {
                    return handle_own_abort(vm, frame, flow);
                }
            }
            MachInst::StoreIdx { src, base, index } => {
                let addr = r[base.0 as usize].wrapping_add(r[index.0 as usize]);
                vm.rt.mem.write(addr, r[src.0 as usize]);
                if let Err(flow) = mem_step(vm) {
                    return handle_own_abort(vm, frame, flow);
                }
            }
            MachInst::LoadGlobal { dst, addr } => {
                let bits = vm.rt.mem.read(addr);
                r[dst.0 as usize] = if bits == 0 { Value::UNDEFINED.to_bits() } else { bits };
                if let Err(flow) = mem_step(vm) {
                    return handle_own_abort(vm, frame, flow);
                }
            }
            MachInst::StoreGlobal { src, addr } => {
                vm.rt.mem.write(addr, r[src.0 as usize]);
                if let Err(flow) = mem_step(vm) {
                    return handle_own_abort(vm, frame, flow);
                }
            }
            MachInst::CallRt { dst, func, args, site } => {
                // Irrevocable events (I/O) abort the transaction first
                // (paper §V-A); the Baseline re-execution performs the
                // print non-transactionally, exactly once.
                if vm.tx.active()
                    && matches!(func, nomap_runtime::RuntimeFn::Intrinsic(Intrinsic::Print))
                {
                    let flow =
                        vm.trigger_abort(AbortReason::Check(nomap_machine::CheckKind::Other));
                    return handle_own_abort(vm, frame, flow);
                }
                let argv: Vec<Value> =
                    args.iter().map(|m| Value::from_bits(r[m.0 as usize])).collect();
                vm.rt.charge(vm.rt.costs.call_overhead);
                let result = func.dispatch(&mut vm.rt, &argv, site).map_err(VmError::from)?;
                let charged = vm.rt.take_charged();
                vm.count_runtime(charged);
                r[dst.0 as usize] = result.to_bits();
                if let Err(flow) = mem_step(vm) {
                    return handle_own_abort(vm, frame, flow);
                }
            }
            MachInst::CallJs { dst, callee, args } => {
                let argv: Vec<Value> =
                    args.iter().map(|m| Value::from_bits(r[m.0 as usize])).collect();
                if vm.tx.active() {
                    vm.tx_saw_call = true;
                }
                match vm.call_function(callee, &argv) {
                    Ok(v) => r[dst.0 as usize] = v.to_bits(),
                    Err(Flow::TxAbort) => {
                        // Are we the owner of the aborted transaction?
                        match vm.tx_fallback.take() {
                            Some(fb) if fb.depth == vm.depth => {
                                materialize_baseline(
                                    vm,
                                    frame,
                                    fb.func,
                                    fb.bc,
                                    &fb.regs,
                                    ReplayMode::TxnRetry,
                                );
                                continue;
                            }
                            fb => {
                                vm.tx_fallback = fb;
                                return Err(Flow::TxAbort);
                            }
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            MachInst::Ret { src } => {
                return Ok(Value::from_bits(r[src.0 as usize]));
            }
            MachInst::DeoptIf { cond, smp, kind } => {
                if frame.code.tier == Tier::Ftl {
                    vm.stats.add_check(kind);
                    vm.profiler_check(frame.code.func.0, kind);
                }
                if r[cond.0 as usize] != 0 {
                    take_deopt(vm, frame, smp, kind)?;
                }
            }
            MachInst::DeoptIfOverflow { smp } => {
                if frame.code.tier == Tier::Ftl {
                    vm.stats.add_check(nomap_machine::CheckKind::Overflow);
                    vm.profiler_check(frame.code.func.0, nomap_machine::CheckKind::Overflow);
                }
                if vm_of(vm) {
                    take_deopt(vm, frame, smp, CheckKind::Overflow)?;
                }
            }
            MachInst::AbortIf { cond, kind } => {
                vm.stats.add_check(kind);
                vm.profiler_check(frame.code.func.0, kind);
                if r[cond.0 as usize] != 0 {
                    let flow = vm.trigger_abort(AbortReason::Check(kind));
                    return handle_own_abort(vm, frame, flow);
                }
            }
            MachInst::AbortIfOverflow => {
                vm.stats.add_check(nomap_machine::CheckKind::Overflow);
                vm.profiler_check(frame.code.func.0, nomap_machine::CheckKind::Overflow);
                if vm_of(vm) {
                    let flow =
                        vm.trigger_abort(AbortReason::Check(nomap_machine::CheckKind::Overflow));
                    return handle_own_abort(vm, frame, flow);
                }
            }
            MachInst::XBegin { fallback } => {
                let outermost = !vm.tx.active();
                vm.tx.begin();
                if outermost {
                    let entry = &frame.code.stack_maps[fallback.0 as usize];
                    let regs = snapshot(frame, entry);
                    vm.tx_fallback = Some(TxFallback {
                        depth: vm.depth,
                        func: frame.code.func,
                        bc: entry.bc,
                        regs,
                    });
                    vm.tx_saw_call = false;
                    vm.stats.tx_begun += 1;
                    if vm.tracer.is_enabled() {
                        let ev = TraceEvent::TxBegin {
                            func: frame.code.func.0,
                            name: vm.funcs[frame.code.func.0 as usize].name.clone(),
                        };
                        let now = vm.stats.total_cycles();
                        vm.tracer.emit(now, move || ev);
                    }
                }
                let cyc = vm.timing.xbegin_cycles(vm.htm.kind);
                vm.add_cycles(true, cyc, frame.code.func.0, frame.code.tier, RegionKind::TxnBody);
            }
            MachInst::XEnd => match vm.tx.end(&vm.htm) {
                Ok(Some(outcome)) => {
                    vm.stats.tx_committed += 1;
                    vm.stats.tx_character.record(outcome);
                    vm.cache.flash_clear_sw();
                    vm.tx_fallback = None;
                    let cyc = vm.timing.xend_cycles(vm.htm.kind);
                    // Commit overhead is part of the transaction's cost.
                    vm.add_cycles(
                        false,
                        cyc,
                        frame.code.func.0,
                        frame.code.tier,
                        RegionKind::TxnBody,
                    );
                    if let Some(p) = &mut vm.profiler {
                        p.data.record_commit(
                            frame.code.func.0,
                            outcome.write_footprint_bytes,
                            outcome.read_footprint_bytes,
                        );
                    }
                    if vm.tracer.is_enabled() {
                        let ev = TraceEvent::TxCommit {
                            func: frame.code.func.0,
                            footprint_bytes: outcome.write_footprint_bytes,
                            read_footprint_bytes: outcome.read_footprint_bytes,
                            max_assoc: outcome.max_assoc,
                            instructions: outcome.instructions,
                        };
                        let now = vm.stats.total_cycles();
                        vm.tracer.emit(now, move || ev);
                    }
                }
                Ok(None) => {}
                Err(reason) => {
                    let flow = vm.trigger_abort(reason);
                    return handle_own_abort(vm, frame, flow);
                }
            },
            MachInst::Fence | MachInst::Nop => {}
        }
        // Overflow flag bookkeeping happens inside int32_arith; memory
        // traffic inside mem_step.
    }
}

/// Shared int32 arithmetic with OF/SOF modelling. Stores the wrapped result
/// and records the overflow flag in `vm.of`.
fn int32_arith(
    vm: &mut Vm,
    r: &mut [u64],
    dst: MReg,
    a: MReg,
    b: Option<MReg>,
    op: impl Fn(i32, i32) -> Option<i32>,
) {
    let x = r[a.0 as usize] as u32 as i32;
    let y = b.map(|m| r[m.0 as usize] as u32 as i32).unwrap_or(0);
    match op(x, y) {
        Some(v) => {
            r[dst.0 as usize] = v as i64 as u64;
            vm.of = false;
        }
        None => {
            // Wrapped result (never observed when guards are in place; SOF
            // mode aborts at XEnd before anyone can use it).
            r[dst.0 as usize] = x.wrapping_add(y) as i64 as u64;
            vm.of = true;
            if vm.tx.active() {
                vm.tx.set_sof();
            }
        }
    }
}

fn vm_of(vm: &Vm) -> bool {
    vm.of
}

/// After memory-touching instructions: drain traffic, maybe abort.
fn mem_step(vm: &mut Vm) -> Result<(), Flow> {
    if let Some(reason) = vm.process_memory_traffic() {
        return Err(vm.trigger_abort(reason));
    }
    Ok(())
}

/// Handles `Flow::TxAbort` raised by this very frame: if it owns the
/// transaction, fall back to Baseline locally; otherwise propagate.
fn handle_own_abort(vm: &mut Vm, frame: &mut Frame, flow: Flow) -> Result<Value, Flow> {
    match flow {
        Flow::TxAbort => match vm.tx_fallback.take() {
            Some(fb) if fb.depth == vm.depth => {
                materialize_baseline(vm, frame, fb.func, fb.bc, &fb.regs, ReplayMode::TxnRetry);
                // Resume the loop by recursing into the (now Baseline)
                // frame.
                exec_loop(vm, frame)
            }
            fb => {
                vm.tx_fallback = fb;
                Err(Flow::TxAbort)
            }
        },
        other => Err(other),
    }
}

/// OSR exit: deoptimize this frame to Baseline through stack map `smp`
/// because a `kind` check failed. Inside a transaction this becomes a full
/// abort (the paper's TMUnopt SMPs): roll back and re-enter through the
/// transaction fallback instead.
fn take_deopt(
    vm: &mut Vm,
    frame: &mut Frame,
    smp: nomap_machine::SmpId,
    kind: CheckKind,
) -> Result<(), Flow> {
    vm.stats.deopts += 1;
    vm.rt.profiles.func_mut(frame.code.func).deopt_count += 1;
    if vm.profiler.is_some() {
        let bc = frame.code.stack_maps[smp.0 as usize].bc;
        vm.profiler_deopt(frame.code.func.0, smp.0, bc, kind);
    }
    if vm.tx.active() {
        let flow = vm.trigger_abort(AbortReason::Check(nomap_machine::CheckKind::Other));
        match flow {
            Flow::TxAbort => match vm.tx_fallback.take() {
                Some(fb) if fb.depth == vm.depth => {
                    materialize_baseline(vm, frame, fb.func, fb.bc, &fb.regs, ReplayMode::TxnRetry);
                    return Ok(());
                }
                fb => {
                    vm.tx_fallback = fb;
                    return Err(Flow::TxAbort);
                }
            },
            other => return Err(other),
        }
    }
    let entry = frame.code.stack_maps[smp.0 as usize].clone();
    let values = snapshot(frame, &entry);
    let func = frame.code.func;
    if vm.tracer.is_enabled() {
        let ev = TraceEvent::Deopt {
            func: func.0,
            name: vm.funcs[func.0 as usize].name.clone(),
            smp: smp.0,
            bc: entry.bc,
            kind,
        };
        let now = vm.stats.total_cycles();
        vm.tracer.emit(now, move || ev);
    }
    materialize_baseline(vm, frame, func, entry.bc, &values, ReplayMode::DeoptReplay);
    Ok(())
}

/// Inlined math: pure FP ops cost nothing extra (single machine
/// instruction); transcendentals charge their libm cost.
fn exec_math(vm: &Vm, intr: Intrinsic, a: f64, b: f64) -> (f64, u64) {
    use Intrinsic::*;
    let trig = vm.rt.costs.intrinsic_trig;
    match intr {
        MathSqrt => (a.sqrt(), 0),
        MathFloor => (a.floor(), 0),
        MathCeil => (a.ceil(), 0),
        MathRound => ((a + 0.5).floor(), 0),
        MathAbs => (a.abs(), 0),
        MathMax => (if a.is_nan() || b.is_nan() { f64::NAN } else { a.max(b) }, 0),
        MathMin => (if a.is_nan() || b.is_nan() { f64::NAN } else { a.min(b) }, 0),
        MathSin => (a.sin(), trig),
        MathCos => (a.cos(), trig),
        MathTan => (a.tan(), trig),
        MathAtan => (a.atan(), trig),
        MathAtan2 => (a.atan2(b), trig),
        MathExp => (a.exp(), trig),
        MathLog => (a.ln(), trig),
        MathPow => (a.powf(b), trig),
        other => panic!("non-math intrinsic {other:?} lowered to MathF64"),
    }
}
