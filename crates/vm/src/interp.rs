//! The Interpreter tier: direct bytecode execution with full profiling.
//!
//! Each opcode charges a dispatch overhead plus whatever the generic
//! semantics charge — the cost structure that makes Baseline ≈2× and FTL
//! ≈10× faster (paper Table I).

use nomap_bytecode::{Const, FuncId, Op};
use nomap_machine::{InstCategory, Tier};
use nomap_runtime::{RuntimeFn, Value};

use crate::error::Flow;
use crate::vm::Vm;

/// Runs `id` in the interpreter.
pub(crate) fn interpret(vm: &mut Vm, id: FuncId, args: &[Value]) -> Result<Value, Flow> {
    let saved_mode = vm.profiler_enter(id.0, Tier::Interpreter);
    let result = interpret_inner(vm, id, args);
    vm.profiler_exit(saved_mode);
    result
}

fn interpret_inner(vm: &mut Vm, id: FuncId, args: &[Value]) -> Result<Value, Flow> {
    let func = vm.funcs[id.0 as usize].clone();
    let mut regs = vec![Value::UNDEFINED; func.register_count as usize];
    let n = args.len().min(func.param_count as usize);
    regs[..n].copy_from_slice(&args[..n]);
    let mut pc: u32 = 0;
    let site = |s| Some((id, s));
    // Previous opcode's kind when the current opcode is its static
    // fallthrough successor (census digrams; `None` after taken branches).
    let mut prev_kind: Option<u8> = None;

    loop {
        let op = func.code[pc as usize];
        if let Some(census) = vm.census.as_deref_mut() {
            let cur = op.kind_index();
            census.record_op(cur);
            if let Some(prev) = prev_kind {
                census.record_digram(prev, cur);
            }
        }
        let mut next = pc + 1;
        match op {
            Op::LoadConst { dst, cid } => {
                let v = match &func.constants[cid.0 as usize] {
                    Const::Num(n) => Value::new_number(*n),
                    Const::Str(s) => {
                        let sid = vm.rt.strings.intern(s);
                        vm.rt.string_value(sid)?
                    }
                };
                regs[dst.0 as usize] = v;
            }
            Op::LoadInt { dst, value } => regs[dst.0 as usize] = Value::new_int32(value),
            Op::LoadBool { dst, value } => regs[dst.0 as usize] = Value::new_bool(value),
            Op::LoadUndefined { dst } => regs[dst.0 as usize] = Value::UNDEFINED,
            Op::LoadNull { dst } => regs[dst.0 as usize] = Value::NULL,
            Op::Mov { dst, src } => regs[dst.0 as usize] = regs[src.0 as usize],
            Op::Binary { op, dst, a, b, site: s } => {
                let va = regs[a.0 as usize];
                let vb = regs[b.0 as usize];
                regs[dst.0 as usize] =
                    RuntimeFn::Binary(op).dispatch(&mut vm.rt, &[va, vb], site(s))?;
            }
            Op::Unary { op, dst, a, site: s } => {
                let va = regs[a.0 as usize];
                regs[dst.0 as usize] = RuntimeFn::Unary(op).dispatch(&mut vm.rt, &[va], site(s))?;
            }
            Op::Jump { target } => {
                if target <= pc {
                    vm.rt.profiles.func_mut(id).back_edges += 1;
                }
                next = target;
            }
            Op::JumpIfTrue { cond, target } | Op::JumpIfFalse { cond, target } => {
                let truthy = vm.rt.to_boolean(regs[cond.0 as usize]);
                let take = truthy == matches!(op, Op::JumpIfTrue { .. });
                if take {
                    if target <= pc {
                        vm.rt.profiles.func_mut(id).back_edges += 1;
                    }
                    next = target;
                }
            }
            Op::NewObject { dst } => regs[dst.0 as usize] = vm.rt.new_object()?,
            Op::NewArray { dst, len } => {
                let l = regs[len.0 as usize];
                regs[dst.0 as usize] = RuntimeFn::NewArray.dispatch(&mut vm.rt, &[l], None)?;
            }
            Op::GetProp { dst, obj, name, site: s } => {
                let o = regs[obj.0 as usize];
                regs[dst.0 as usize] = vm.rt.get_prop(o, name, site(s))?;
            }
            Op::PutProp { obj, name, val, site: s } => {
                let o = regs[obj.0 as usize];
                let v = regs[val.0 as usize];
                vm.rt.put_prop(o, name, v, site(s))?;
            }
            Op::GetIndex { dst, arr, idx, site: s } => {
                let a = regs[arr.0 as usize];
                let i = regs[idx.0 as usize];
                regs[dst.0 as usize] = vm.rt.get_index(a, i, site(s))?;
            }
            Op::PutIndex { arr, idx, val, site: s } => {
                let a = regs[arr.0 as usize];
                let i = regs[idx.0 as usize];
                let v = regs[val.0 as usize];
                vm.rt.put_index(a, i, v, site(s))?;
            }
            Op::GetGlobal { dst, name, .. } => {
                regs[dst.0 as usize] = vm.rt.get_global(name);
            }
            Op::PutGlobal { name, src } => {
                let v = regs[src.0 as usize];
                vm.rt.put_global(name, v);
            }
            Op::Call { dst, func: callee, argv, argc, .. } => {
                let args: Vec<Value> =
                    (0..argc as usize).map(|i| regs[argv.0 as usize + i]).collect();
                // Account for this opcode before recursing so attribution
                // nests correctly.
                vm.rt.charge(vm.rt.costs.js_call);
                account(vm, id)?;
                let r = vm.call_function(callee, &args)?;
                regs[dst.0 as usize] = r;
                if vm.census.is_some() {
                    prev_kind = (next == pc + 1).then(|| op.kind_index());
                }
                pc = next;
                continue;
            }
            Op::CallIntrinsic { dst, intr, argv, argc, site: s } => {
                // Irrevocable I/O aborts the enclosing transaction first
                // (paper §V-A).
                if vm.tx.active() && intr == nomap_bytecode::Intrinsic::Print {
                    return Err(vm.trigger_abort(nomap_machine::AbortReason::Check(
                        nomap_machine::CheckKind::Other,
                    )));
                }
                let args: Vec<Value> =
                    (0..argc as usize).map(|i| regs[argv.0 as usize + i]).collect();
                regs[dst.0 as usize] = vm.rt.call_intrinsic(intr, &args, site(s))?;
            }
            Op::Return { src } => {
                let v = regs[src.0 as usize];
                account(vm, id)?;
                return Ok(v);
            }
        }
        account(vm, id)?;
        if vm.census.is_some() {
            prev_kind = (next == pc + 1).then(|| op.kind_index());
        }
        pc = next;
    }
}

/// Charges the interpreter dispatch cost plus whatever the runtime charged,
/// attributes the instructions, processes memory traffic and advances the
/// cycle model. Interpreted code can run *inside* a transaction (called
/// from FTL NoMap code), so capacity aborts can surface here too.
fn account(vm: &mut Vm, id: FuncId) -> Result<(), Flow> {
    let insts = vm.rt.costs.interp_dispatch + vm.rt.take_charged();
    vm.stats.add_insts(InstCategory::NoFtl, Tier::Interpreter, insts);
    vm.last_tier = Tier::Interpreter;
    if vm.tracer.is_enabled() {
        let name = vm.funcs[id.0 as usize].name.clone();
        vm.tracer.record_residency(&name, Tier::Interpreter, insts);
    }
    let cycles = insts * vm.timing.per_inst;
    let in_tx = vm.tx.active();
    if in_tx {
        vm.tx.instructions += insts;
    }
    let kind = vm.exec_kind(in_tx);
    vm.add_cycles(in_tx, cycles, id.0, Tier::Interpreter, kind);
    vm.profiler_insts(id.0, Tier::Interpreter, insts);
    if let Some(reason) = vm.process_memory_traffic() {
        return Err(vm.trigger_abort(reason));
    }
    Ok(())
}
