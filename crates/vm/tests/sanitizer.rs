//! End-to-end pass-sanitizer and scope-seeding behavior.

use nomap_vm::{Architecture, TraceEvent, Vm, VmConfig};

const SUM_SRC: &str = "
    function sum(a, n) {
        var s = 0;
        for (var i = 0; i < n; i++) { s += a[i]; }
        return s;
    }
    var data = new Array(64);
    for (var j = 0; j < 64; j++) { data[j] = j; }
    function run() { return sum(data, 64); }
";

/// A store loop whose write footprint (40k elements, ~5000 cache lines)
/// is statically guaranteed to overflow any modelled HTM (4096 lines).
const FILL_SRC: &str = "
    var data = new Array(40000);
    function fill() {
        for (var i = 0; i < 40000; i++) { data[i] = i; }
        return data[39999];
    }
    function run() { return fill(); }
";

fn warm(vm: &mut Vm, n: u32) -> nomap_vm::Value {
    vm.run_main().unwrap();
    let mut last = vm.call("run", &[]).unwrap();
    for _ in 0..n {
        last = vm.call("run", &[]).unwrap();
    }
    last
}

#[test]
fn sanitized_run_matches_plain_run_and_verifies_every_compile() {
    let mut plain_cfg = VmConfig::new(Architecture::NoMap);
    plain_cfg.sanitize = false;
    let mut plain = Vm::with_config(SUM_SRC, plain_cfg).unwrap();
    let expected = warm(&mut plain, 200);

    let mut cfg = VmConfig::new(Architecture::NoMap);
    cfg.sanitize = true;
    cfg.txn_callees = true; // audit the callee-variant path too
    let mut vm = Vm::with_config(SUM_SRC, cfg).unwrap();
    vm.enable_tracing(4096);
    let got = warm(&mut vm, 200);
    assert_eq!(got, expected);

    let verifies: Vec<_> = vm
        .trace()
        .into_iter()
        .filter_map(|r| match r.event {
            TraceEvent::Verify { stages, diagnostics, clean, .. } => {
                Some((stages, diagnostics, clean))
            }
            _ => None,
        })
        .collect();
    // Every DFG/FTL/callee compile of a hot function went through audit.
    assert!(verifies.len() >= 3, "expected audited compiles, saw {}", verifies.len());
    for (stages, diagnostics, clean) in verifies {
        assert!(clean, "dirty compile slipped through ({diagnostics} findings)");
        assert!(stages > 0);
    }
    let counters = &vm.trace_metrics().counters;
    // Every FTL compile (pass-outcome) had a matching verify event, and the
    // DFG + callee compiles add more on top.
    assert!(
        counters.get("verify").copied().unwrap_or(0)
            > counters.get("pass-outcome").copied().unwrap_or(0)
    );
}

#[test]
fn footprint_seeding_skips_runtime_ladder_steps() {
    // Without seeding: Nest overflows capacity at runtime; the §V-C
    // ladder steps down (capacity abort → recompile) at least once.
    let mut cfg = VmConfig::new(Architecture::NoMap);
    cfg.sanitize = false;
    let mut unseeded = Vm::with_config(FILL_SRC, cfg).unwrap();
    unseeded.enable_tracing(1 << 16);
    let expected = warm(&mut unseeded, 8);
    let unseeded_steps = unseeded.trace_metrics().counters.get("ladder-step").copied().unwrap_or(0);
    assert!(unseeded_steps > 0, "expected runtime ladder steps without seeding");

    // With seeding: the estimator predicts the overflow at compile time
    // and starts tiled — same result, no runtime ladder steps at all.
    let mut cfg = VmConfig::new(Architecture::NoMap);
    cfg.sanitize = false;
    cfg.seed_scope = true;
    let mut seeded = Vm::with_config(FILL_SRC, cfg).unwrap();
    seeded.enable_tracing(1 << 16);
    let got = warm(&mut seeded, 8);
    assert_eq!(got, expected);
    assert_eq!(
        seeded.trace_metrics().counters.get("ladder-step").copied().unwrap_or(0),
        0,
        "seeding should pre-empt the ladder"
    );

    let seeded_scopes: Vec<_> = seeded
        .trace()
        .into_iter()
        .filter_map(|r| match r.event {
            TraceEvent::Verify { seeded_scope, .. } => Some(seeded_scope),
            _ => None,
        })
        .collect();
    assert!(
        seeded_scopes.iter().any(|s| s.as_deref().is_some_and(|s| s.starts_with("InnerTiled"))),
        "fill() should have been seeded to a tiled scope: {seeded_scopes:?}"
    );
}

#[test]
fn sanitizer_plus_seeding_compose() {
    let mut cfg = VmConfig::new(Architecture::NoMap);
    cfg.sanitize = true;
    cfg.seed_scope = true;
    let mut vm = Vm::with_config(FILL_SRC, cfg).unwrap();
    let v = warm(&mut vm, 8);
    assert_eq!(format!("{v:?}"), "Int32(39999)");
}
