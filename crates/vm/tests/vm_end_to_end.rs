//! End-to-end VM tests: every tier and every architecture must compute the
//! same answers, and the NoMap configurations must show the paper's
//! qualitative effects.

use nomap_vm::{Architecture, Tier, TierLimit, Value, Vm, VmConfig};

const SUM_LOOP: &str = "
    function sum(a, n) {
        var s = 0;
        for (var i = 0; i < n; i++) { s += a[i]; }
        return s;
    }
    var data = new Array(64);
    for (var j = 0; j < 64; j++) { data[j] = j; }
    function run() { return sum(data, 64); }
";

/// The paper's Fig. 4 kernel: property loads, array loads, int add with
/// accumulation into a property.
const FIG4: &str = "
    var obj = {values: new Array(128), sum: 0};
    for (var j = 0; j < 128; j++) { obj.values[j] = j; }
    function kernel() {
        obj.sum = 0;
        var len = obj.values.length;
        for (var idx = 0; idx < len; idx++) {
            var value = obj.values[idx];
            obj.sum += value;
        }
        return obj.sum;
    }
    function run() { return kernel(); }
";

fn run_hot(src: &str, arch: Architecture, iters: usize) -> (Vm, Value) {
    let mut vm = Vm::new(src, arch).expect("compiles");
    vm.run_main().expect("main runs");
    let expect = vm.call("run", &[]).expect("first run");
    for _ in 0..iters {
        let v = vm.call("run", &[]).expect("warm run");
        assert_eq!(v, expect, "result changed while tiering up under {arch:?}");
    }
    vm.reset_stats();
    let v = vm.call("run", &[]).expect("measured run");
    assert_eq!(v, expect);
    (vm, v)
}

#[test]
fn sum_loop_correct_across_all_architectures() {
    let mut results = Vec::new();
    for arch in Architecture::ALL {
        let (_, v) = run_hot(SUM_LOOP, arch, 150);
        results.push(v);
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(results[0], Value::new_int32((0..64).sum()));
}

#[test]
fn fig4_kernel_correct_across_all_architectures() {
    for arch in Architecture::ALL {
        let (_, v) = run_hot(FIG4, arch, 150);
        assert_eq!(v, Value::new_int32((0..128).sum()), "{arch:?}");
    }
}

#[test]
fn tiers_up_to_ftl() {
    let (vm, _) = run_hot(SUM_LOOP, Architecture::Base, 150);
    assert_eq!(vm.current_tier("sum"), Some(Tier::Ftl));
    assert!(vm.stats.tier_insts(Tier::Ftl) > 0, "measured run uses FTL code");
}

#[test]
fn tier_limits_are_respected() {
    for (limit, tier) in [
        (TierLimit::Interpreter, Tier::Interpreter),
        (TierLimit::Baseline, Tier::Baseline),
        (TierLimit::Dfg, Tier::Dfg),
        (TierLimit::Ftl, Tier::Ftl),
    ] {
        let mut cfg = VmConfig::new(Architecture::Base);
        cfg.tier_limit = limit;
        let mut vm = Vm::with_config(SUM_LOOP, cfg).unwrap();
        vm.run_main().unwrap();
        for _ in 0..150 {
            vm.call("run", &[]).unwrap();
        }
        assert_eq!(vm.current_tier("sum"), Some(tier), "{limit:?}");
    }
}

#[test]
fn tiers_get_faster() {
    let mut insts = Vec::new();
    for limit in [TierLimit::Interpreter, TierLimit::Baseline, TierLimit::Dfg, TierLimit::Ftl] {
        let mut cfg = VmConfig::new(Architecture::Base);
        cfg.tier_limit = limit;
        let mut vm = Vm::with_config(SUM_LOOP, cfg).unwrap();
        vm.run_main().unwrap();
        for _ in 0..150 {
            vm.call("run", &[]).unwrap();
        }
        vm.reset_stats();
        vm.call("run", &[]).unwrap();
        insts.push(vm.stats.total_insts());
    }
    assert!(
        insts.windows(2).all(|w| w[0] > w[1]),
        "each tier should execute fewer instructions: {insts:?}"
    );
}

#[test]
fn nomap_reduces_instructions_vs_base() {
    let (base, _) = run_hot(FIG4, Architecture::Base, 200);
    let (nomap, _) = run_hot(FIG4, Architecture::NoMap, 200);
    let bi = base.stats.total_insts();
    let ni = nomap.stats.total_insts();
    assert!(ni < bi, "NoMap should beat Base on the Fig.4 kernel: base={bi} nomap={ni}");
}

#[test]
fn nomap_commits_transactions() {
    let (vm, _) = run_hot(SUM_LOOP, Architecture::NoMapS, 200);
    assert!(vm.stats.tx_begun > 0, "transactions were started");
    assert!(vm.stats.tx_committed > 0, "transactions committed");
    // The Fig.4 kernel stores into `obj.sum`, so its transaction has a
    // write footprint; the pure-read sum loop may legitimately have none.
    let (vm, _) = run_hot(FIG4, Architecture::NoMapS, 200);
    assert!(vm.stats.tx_committed > 0);
    assert!(vm.stats.tx_character.footprint_max > 0);
}

#[test]
fn base_executes_checks_nomap_bc_removes_them() {
    let (base, _) = run_hot(FIG4, Architecture::Base, 200);
    let (bc, _) = run_hot(FIG4, Architecture::NoMapBc, 200);
    assert!(base.stats.total_checks() > 0, "Base has SMP-guarding checks");
    assert!(
        bc.stats.total_checks() < base.stats.total_checks(),
        "NoMap_BC strips in-transaction checks: base={} bc={}",
        base.stats.total_checks(),
        bc.stats.total_checks()
    );
}

#[test]
fn overflow_deopts_and_recovers() {
    // The add overflows int32 after tiering up on small values; the FTL
    // code must deopt (Base) or abort (NoMap) and still produce the right
    // double result.
    let src = "
        function acc(x, n) {
            var s = x;
            for (var i = 0; i < n; i++) { s = s + 1000000; }
            return s;
        }
        function run_small() { return acc(0, 100); }
        function run_big() { return acc(2147000000, 100); }
    ";
    for arch in [Architecture::Base, Architecture::NoMap] {
        let mut vm = Vm::new(src, arch).unwrap();
        vm.run_main().unwrap();
        for _ in 0..200 {
            assert_eq!(vm.call("run_small", &[]).unwrap(), Value::new_int32(100_000_000));
        }
        assert_eq!(vm.current_tier("acc"), Some(Tier::Ftl));
        let v = vm.call("run_big", &[]).unwrap();
        assert_eq!(v.as_number(), 2_147_000_000.0 + 100.0 * 1_000_000.0, "{arch:?}");
    }
}

#[test]
fn recursion_works_at_all_tiers() {
    let src = "
        function fib(n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
        function run() { return fib(15); }
    ";
    let (_, v) = run_hot(src, Architecture::NoMap, 60);
    assert_eq!(v, Value::new_int32(610));
}

#[test]
fn strings_and_objects_work_hot() {
    let src = "
        function make(i) { return {name: 'x' + i, id: i}; }
        function runner() {
            var total = 0;
            for (var i = 0; i < 20; i++) {
                var o = make(i % 3);
                total += o.id;
            }
            return total;
        }
        function run() { return runner(); }
    ";
    let (_, v) = run_hot(src, Architecture::NoMap, 150);
    let expect: i32 = (0..20).map(|i| i % 3).sum();
    assert_eq!(v, Value::new_int32(expect));
}

#[test]
fn deep_recursion_overflows_cleanly() {
    let src = "function down(n) { return down(n + 1); } function run() { return down(0); }";
    let mut vm = Vm::new(src, Architecture::Base).unwrap();
    vm.run_main().unwrap();
    let err = vm.call("run", &[]).unwrap_err();
    assert!(matches!(err, nomap_vm::VmError::StackOverflow));
}

#[test]
fn print_output_captured() {
    let src = "print(42); print('done');";
    let mut vm = Vm::new(src, Architecture::Base).unwrap();
    vm.run_main().unwrap();
    assert_eq!(vm.output(), "42\ndone\n");
}

#[test]
fn disassembly_and_code_sizes_available_after_tier_up() {
    let (vm, _) = run_hot(SUM_LOOP, Architecture::NoMap, 150);
    let sizes = vm.code_sizes("sum").unwrap();
    assert!(sizes.iter().all(|s| s.is_some()), "all three tiers compiled: {sizes:?}");
    let ftl = vm.disassemble("sum", Tier::Ftl).unwrap();
    assert!(ftl.contains("xbegin"), "NoMap FTL code is transactional:\n{ftl}");
    assert!(ftl.contains("abort_if"), "SMPs became aborts");
    let baseline = vm.disassemble("sum", Tier::Baseline).unwrap();
    assert!(baseline.contains("call_rt"), "baseline is runtime-call based");
    assert!(vm.disassemble("nosuch", Tier::Ftl).is_none());
}
