//! Shared infrastructure for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! this library provides the steady-state runner, averaging helpers and
//! plain-text table/bar rendering they share. DESIGN.md carries the
//! experiment index mapping binaries to paper artifacts.

use nomap_vm::{Architecture, ExecStats, TierLimit, VmError};
use nomap_workloads::{run_workload, RunSpec, Suite, Workload};

/// Number of measured `run()` calls in [`RunSpec::steady`]; divide window
/// totals by this for per-run numbers.
pub const STEADY_MEASURED: u64 = 3;

/// Measured statistics for one (workload, configuration) pair.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Workload id.
    pub id: String,
    /// Steady-state statistics.
    pub stats: ExecStats,
}

/// Runs `w` to steady state under `arch`.
///
/// # Errors
///
/// Propagates VM errors (a failing workload should abort the experiment).
pub fn measure(w: &Workload, arch: Architecture) -> Result<Measured, VmError> {
    let out = run_workload(w, RunSpec::steady(arch))?;
    Ok(Measured { id: w.id.to_owned(), stats: out.stats })
}

/// Runs `w` to steady state with a capped tier under `Base`.
///
/// # Errors
///
/// Propagates VM errors.
pub fn measure_capped(w: &Workload, limit: TierLimit) -> Result<Measured, VmError> {
    let out = run_workload(w, RunSpec::capped(Architecture::Base, limit))?;
    Ok(Measured { id: w.id.to_owned(), stats: out.stats })
}

/// Geometric mean (used for ratio averages).
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Filters a suite's workloads: all of them (`AvgT`) or the paper's `AvgS`
/// subset.
pub fn subset(ws: &[Workload], suite: Suite, avgs_only: bool) -> Vec<Workload> {
    ws.iter()
        .filter(|w| w.suite == suite && (!avgs_only || w.in_avgs))
        .cloned()
        .collect()
}

/// Renders a unicode bar of `frac` (0..=1+) scaled to `width` cells.
pub fn bar(frac: f64, width: usize) -> String {
    let cells = (frac.max(0.0) * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..width.max(cells) {
        s.push(if i < cells { '█' } else { ' ' });
        if i >= width * 2 {
            break; // clamp runaway bars
        }
    }
    s
}

/// Prints a header in a consistent style.
pub fn heading(title: &str) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_of_ratios() {
        let g = geo_mean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-9);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn subset_respects_avgs() {
        let all = nomap_workloads::sunspider();
        let avgs = subset(&all, Suite::SunSpider, true);
        assert_eq!(avgs.len(), 16);
        let avgt = subset(&all, Suite::SunSpider, false);
        assert_eq!(avgt.len(), 26);
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(0.5, 4), "██  ");
        assert!(bar(0.0, 3).trim().is_empty());
    }
}
