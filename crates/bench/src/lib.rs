//! Shared infrastructure for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! this library provides the steady-state runner, averaging helpers and
//! plain-text table/bar rendering they share. DESIGN.md carries the
//! experiment index mapping binaries to paper artifacts.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;

use nomap_fleet::FleetConfig;
use nomap_trace::{check_name, obj, JsonValue, SCHEMA_VERSION};
use nomap_vm::{Architecture, BenchRows, CheckKind, ExecStats, InstCategory, TierLimit, VmError};
use nomap_workloads::{run_workload, RunSpec, Suite, Workload};

/// Number of measured `run()` calls in [`RunSpec::steady`]; divide window
/// totals by this for per-run numbers.
pub const STEADY_MEASURED: u64 = 3;

/// Measured statistics for one (workload, configuration) pair.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Workload id.
    pub id: String,
    /// Steady-state statistics.
    pub stats: ExecStats,
}

/// Runs `w` to steady state under `arch`.
///
/// # Errors
///
/// Propagates VM errors (a failing workload should abort the experiment).
pub fn measure(w: &Workload, arch: Architecture) -> Result<Measured, VmError> {
    let out = run_workload(w, RunSpec::steady(arch))?;
    Ok(Measured { id: w.id.to_owned(), stats: out.stats })
}

/// Runs `w` to steady state with a capped tier under `Base`.
///
/// # Errors
///
/// Propagates VM errors.
pub fn measure_capped(w: &Workload, limit: TierLimit) -> Result<Measured, VmError> {
    let out = run_workload(w, RunSpec::capped(Architecture::Base, limit))?;
    Ok(Measured { id: w.id.to_owned(), stats: out.stats })
}

/// One (workload, configuration) measurement an experiment binary needs.
///
/// Binaries enqueue every cell of their tables as a job, run them all
/// through [`measure_fleet`], then *replay* their original print loops
/// pulling from the measured map — so stdout and BENCH row order are
/// byte-identical to the historical sequential run for any `--jobs` value.
#[derive(Debug, Clone)]
pub struct MeasureJob {
    /// Benchmark key (usually the workload id).
    pub bench: String,
    /// Configuration label (usually the architecture or tier-cap name).
    pub config: String,
    /// Workload to run.
    pub workload: Workload,
    /// How to run it.
    pub spec: RunSpec,
}

impl MeasureJob {
    /// Job measuring `w` under `spec`, keyed `(w.id, config)`.
    pub fn new(w: &Workload, config: &str, spec: RunSpec) -> Self {
        MeasureJob { bench: w.id.to_owned(), config: config.to_owned(), workload: w.clone(), spec }
    }
}

/// Results of a fleet measurement: steady-state stats keyed by
/// `(bench, config)`, plus the run's scheduling summary.
#[derive(Debug)]
pub struct FleetMeasured {
    map: BTreeMap<(String, String), ExecStats>,
    /// Scheduling telemetry (stderr-only; see `nomap_workloads::fleet`).
    pub summary: nomap_fleet::FleetSummary,
}

impl FleetMeasured {
    /// The measured stats for `(bench, config)`.
    ///
    /// # Panics
    ///
    /// Panics when the pair was never enqueued — an experiment-binary bug,
    /// not a runtime condition.
    pub fn stats(&self, bench: &str, config: &str) -> &ExecStats {
        self.map
            .get(&(bench.to_owned(), config.to_owned()))
            .unwrap_or_else(|| panic!("no measurement enqueued for {bench}/{config}"))
    }

    /// [`Measured`] view of one cell (for helpers taking `Measured`).
    pub fn measured(&self, bench: &str, config: &str) -> Measured {
        Measured { id: bench.to_owned(), stats: self.stats(bench, config).clone() }
    }
}

/// Runs every job through the `nomap-fleet` work queue and returns the
/// measured cells. Duplicate `(bench, config)` keys are measured once
/// (determinism makes repeats identical — the same collapse
/// `BenchRows::push` applies).
///
/// Failed shards are isolated, retried once, and collected; the run always
/// completes. The boxed `Err` carries one line per permanently-failed shard —
/// experiment tables need every cell, so binaries report and exit nonzero.
///
/// # Errors
///
/// When any shard still fails after its retry.
pub fn measure_fleet(
    jobs: &[MeasureJob],
    config: &FleetConfig,
) -> Result<FleetMeasured, Box<(String, nomap_fleet::FleetSummary)>> {
    let mut unique: Vec<&MeasureJob> = Vec::new();
    let mut seen: BTreeMap<(&str, &str), ()> = BTreeMap::new();
    for j in jobs {
        if seen.insert((j.bench.as_str(), j.config.as_str()), ()).is_none() {
            unique.push(j);
        }
    }
    let run = nomap_fleet::run_sharded(unique.len(), config, |i| {
        let j = unique[i];
        run_workload(&j.workload, j.spec)
            .map(|out| out.stats)
            .map_err(|e| format!("{}/{}: {e}", j.bench, j.config))
    });
    let mut map = BTreeMap::new();
    let mut failures: Vec<String> = Vec::new();
    for (j, shard) in unique.iter().zip(&run.shards) {
        match &shard.outcome {
            Ok(stats) => {
                map.insert((j.bench.clone(), j.config.clone()), stats.clone());
            }
            Err(e) => failures.push(format!("shard failed after {} attempts: {e}", shard.attempts)),
        }
    }
    if failures.is_empty() {
        Ok(FleetMeasured { map, summary: run.summary })
    } else {
        Err(Box::new((failures.join("\n"), run.summary)))
    }
}

/// [`measure_fleet`], exiting nonzero when any shard permanently failed:
/// experiment tables need every cell, so a missing one aborts the binary
/// after *all* failures (and the scheduling summary) are reported.
pub fn measure_fleet_or_exit(jobs: &[MeasureJob], config: &FleetConfig) -> FleetMeasured {
    match measure_fleet(jobs, config) {
        Ok(m) => m,
        Err(err) => {
            let (msg, summary) = *err;
            eprintln!("{msg}");
            nomap_workloads::fleet::report_summary(&summary);
            std::process::exit(1);
        }
    }
}

/// Resolves the fleet configuration from the process arguments and
/// `NOMAP_JOBS`, exiting with a usage error when malformed — the shared
/// preamble of every experiment binary.
pub fn fleet_from_env() -> FleetConfig {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match FleetConfig::from_args(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Geometric mean (used for ratio averages).
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Filters a suite's workloads: all of them (`AvgT`) or the paper's `AvgS`
/// subset.
pub fn subset(ws: &[Workload], suite: Suite, avgs_only: bool) -> Vec<Workload> {
    ws.iter().filter(|w| w.suite == suite && (!avgs_only || w.in_avgs)).cloned().collect()
}

/// Renders a unicode bar of `frac` (0..=1+) scaled to `width` cells.
pub fn bar(frac: f64, width: usize) -> String {
    let cells = (frac.max(0.0) * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..width.max(cells) {
        s.push(if i < cells { '█' } else { ' ' });
        if i >= width * 2 {
            break; // clamp runaway bars
        }
    }
    s
}

/// Prints a header in a consistent style.
pub fn heading(title: &str) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
}

/// Machine-readable mirror of an experiment binary's printed tables.
///
/// Every binary builds one `Report` named after the paper artifact it
/// regenerates (`fig8`, `table4`, ...). Rows accumulate as JSON Lines —
/// each stamped with the trace schema version and the artifact id — and
/// [`Report::finish`] writes them to the path given by `--json <path>` on
/// the command line or the `NOMAP_JSON` environment variable. With neither
/// set the report is a no-op, so the human-readable output stays the
/// default interface.
///
/// Independently, `--bench-dir <dir>` (or `NOMAP_BENCH_DIR`) makes
/// [`Report::finish`] also write the canonical `BENCH_<artifact>.json`
/// cycle-count document consumed by `nomap bench-diff` — the perf
/// observatory's regression-gate input. Every [`Report::stats`] call feeds
/// it, so each (bench, config) the binary measures becomes one row.
pub struct Report {
    artifact: String,
    dest: Option<PathBuf>,
    lines: Vec<String>,
    bench_dir: Option<PathBuf>,
    bench_rows: BenchRows,
}

impl Report {
    /// Creates a report for `artifact`, resolving the destination from
    /// `--json <path>` in the process arguments or `NOMAP_JSON`, and the
    /// bench-cycle directory from `--bench-dir <dir>` or `NOMAP_BENCH_DIR`.
    pub fn from_env(artifact: &str) -> Report {
        let args: Vec<String> = std::env::args().collect();
        let flag = |name: &str, env: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1).cloned())
                .or_else(|| std::env::var(env).ok())
                .map(PathBuf::from)
        };
        let mut r = Report::to_path(artifact, flag("--json", "NOMAP_JSON"));
        r.bench_dir = flag("--bench-dir", "NOMAP_BENCH_DIR");
        r
    }

    /// Creates a report writing to `dest` (`None` = disabled). Exposed for
    /// tests; binaries use [`Report::from_env`].
    pub fn to_path(artifact: &str, dest: Option<PathBuf>) -> Report {
        Report {
            artifact: artifact.to_owned(),
            dest,
            lines: Vec::new(),
            bench_dir: None,
            bench_rows: BenchRows::new(artifact),
        }
    }

    /// Directs the canonical `BENCH_<artifact>.json` into `dir`. Exposed
    /// for tests; binaries use [`Report::from_env`].
    pub fn with_bench_dir(mut self, dir: Option<PathBuf>) -> Report {
        self.bench_dir = dir;
        self
    }

    /// Whether a destination is configured (rows are dropped otherwise).
    pub fn enabled(&self) -> bool {
        self.dest.is_some()
    }

    /// The bench-cycle rows accumulated so far.
    pub fn bench_rows(&self) -> &BenchRows {
        &self.bench_rows
    }

    /// Appends one JSONL row; `members` follow the `v`/`artifact` envelope.
    pub fn row(&mut self, members: Vec<(&str, JsonValue)>) {
        if self.dest.is_none() {
            return;
        }
        let mut all: Vec<(&str, JsonValue)> =
            vec![("v", SCHEMA_VERSION.into()), ("artifact", self.artifact.clone().into())];
        all.extend(members);
        self.lines.push(obj(all).render());
    }

    /// Appends the canonical per-measurement row: the full [`ExecStats`]
    /// breakdown for one (workload, configuration) pair.
    pub fn stats(&mut self, bench: &str, config: &str, s: &ExecStats) {
        if self.bench_dir.is_some() {
            self.bench_rows.push(bench, config, s.total_cycles(), s.total_insts());
        }
        if self.dest.is_none() {
            return;
        }
        let insts = obj(vec![
            ("no_ftl", s.insts(InstCategory::NoFtl).into()),
            ("no_tm", s.insts(InstCategory::NoTm).into()),
            ("tm_unopt", s.insts(InstCategory::TmUnopt).into()),
            ("tm_opt", s.insts(InstCategory::TmOpt).into()),
            ("total", s.total_insts().into()),
        ]);
        let cycles = obj(vec![
            ("tm", s.cycles_tm.into()),
            ("non_tm", s.cycles_non_tm.into()),
            ("total", s.total_cycles().into()),
        ]);
        let mut checks: Vec<(&str, JsonValue)> =
            CheckKind::ALL.iter().map(|&k| (check_name(k), JsonValue::from(s.checks(k)))).collect();
        checks.push(("total", s.total_checks().into()));
        let tx = obj(vec![
            ("begun", s.tx_begun.into()),
            ("committed", s.tx_committed.into()),
            ("aborts_check", s.tx_aborts[0].into()),
            ("aborts_capacity", s.tx_aborts[1].into()),
            ("aborts_sticky", s.tx_aborts[2].into()),
            ("footprint_avg", s.tx_character.footprint_avg().into()),
            ("footprint_max", s.tx_character.footprint_max.into()),
            ("max_assoc", s.tx_character.max_assoc.into()),
            ("insts_avg", s.tx_character.insts_avg().into()),
        ]);
        self.row(vec![
            ("bench", bench.into()),
            ("config", config.into()),
            ("insts", insts),
            ("cycles", cycles),
            ("checks", obj(checks)),
            ("tx", tx),
            ("deopts", s.deopts.into()),
            ("dfg_compiles", s.dfg_compiles.into()),
            ("ftl_compiles", s.ftl_compiles.into()),
        ]);
    }

    /// Writes the accumulated rows. Failures are reported on stderr but do
    /// not fail the experiment — the printed tables are already out.
    pub fn finish(self) {
        if let Some(dir) = &self.bench_dir {
            let path = dir.join(format!("BENCH_{}.json", self.artifact));
            let write = || -> std::io::Result<()> {
                std::fs::create_dir_all(dir)?;
                let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
                writeln!(f, "{}", self.bench_rows.to_json().render())?;
                f.flush()
            };
            match write() {
                Ok(()) => eprintln!(
                    "bench: {} cycle rows for {} written to {}",
                    self.bench_rows.rows.len(),
                    self.artifact,
                    path.display()
                ),
                Err(e) => eprintln!("bench: failed to write {}: {e}", path.display()),
            }
        }
        let Some(path) = self.dest else { return };
        let write = || -> std::io::Result<()> {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
            for line in &self.lines {
                writeln!(f, "{line}")?;
            }
            f.flush()
        };
        match write() {
            Ok(()) => eprintln!(
                "json: {} rows for {} written to {}",
                self.lines.len(),
                self.artifact,
                path.display()
            ),
            Err(e) => eprintln!("json: failed to write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_of_ratios() {
        let g = geo_mean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-9);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn subset_respects_avgs() {
        let all = nomap_workloads::sunspider();
        let avgs = subset(&all, Suite::SunSpider, true);
        assert_eq!(avgs.len(), 16);
        let avgt = subset(&all, Suite::SunSpider, false);
        assert_eq!(avgt.len(), 26);
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(0.5, 4), "██  ");
        assert!(bar(0.0, 3).trim().is_empty());
    }

    #[test]
    fn measure_fleet_dedups_cells_and_isolates_failures() {
        let w = Workload {
            id: "T00",
            name: "tiny",
            suite: Suite::Shootout,
            in_avgs: false,
            source: "function run() { return 7; }",
        };
        let jobs = vec![
            MeasureJob::new(&w, "Base", RunSpec::quick(Architecture::Base)),
            MeasureJob::new(&w, "Base", RunSpec::quick(Architecture::Base)),
        ];
        let m = measure_fleet(&jobs, &FleetConfig::with_jobs(2)).unwrap();
        assert_eq!(m.summary.shards, 1, "duplicate (bench, config) cells measure once");
        assert!(m.stats("T00", "Base").total_insts() > 0);
        assert_eq!(m.measured("T00", "Base").id, "T00");

        let broken = Workload { source: "function run() { return missing(); }", ..w };
        let jobs = vec![MeasureJob::new(&broken, "Base", RunSpec::quick(Architecture::Base))];
        let (msg, summary) = *measure_fleet(&jobs, &FleetConfig::sequential()).unwrap_err();
        assert_eq!(summary.failed, 1);
        assert!(msg.contains("T00/Base"), "failure names the cell: {msg}");
    }

    #[test]
    fn disabled_report_is_a_no_op() {
        let mut r = Report::to_path("fig0", None);
        assert!(!r.enabled());
        r.row(vec![("x", 1u64.into())]);
        r.stats("S00", "Base", &ExecStats::new());
        assert!(r.lines.is_empty());
        r.finish(); // must not create anything
    }

    #[test]
    fn bench_dir_emits_canonical_cycle_document() {
        let dir = std::env::temp_dir().join(format!("nomap-bench-test-{}", std::process::id()));
        let mut r = Report::to_path("fig0", None).with_bench_dir(Some(dir.clone()));
        let mut s = ExecStats::new();
        s.cycles_tm = 70;
        s.cycles_non_tm = 30;
        s.add_insts(InstCategory::TmOpt, nomap_vm::Tier::Ftl, 10);
        r.stats("S01", "NoMap", &s);
        r.stats("S01", "NoMap", &ExecStats::new()); // dup keeps first
        assert_eq!(r.bench_rows().rows.len(), 1);
        r.finish();

        let path = dir.join("BENCH_fig0.json");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
        let rows = BenchRows::parse(&text).unwrap();
        assert_eq!(rows.artifact, "fig0");
        assert_eq!(rows.rows.len(), 1);
        assert_eq!(rows.rows[0].cycles, 100);
        assert_eq!(rows.rows[0].insts, 10);
    }

    #[test]
    fn report_rows_carry_envelope_and_stats_breakdown() {
        let path =
            std::env::temp_dir().join(format!("nomap-report-test-{}.jsonl", std::process::id()));
        let mut r = Report::to_path("table9", Some(path.clone()));
        assert!(r.enabled());
        r.row(vec![("note", "summary".into()), ("ratio", 0.5f64.into())]);
        let mut s = ExecStats::new();
        s.add_insts(InstCategory::TmOpt, nomap_vm::Tier::Ftl, 10);
        s.tx_begun = 3;
        r.stats("K07", "NoMap", &s);
        r.finish();

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with(&format!("{{\"v\":{SCHEMA_VERSION},\"artifact\":\"table9\"")));
        }
        assert!(lines[0].contains("\"ratio\":0.5"));
        assert!(lines[1].contains("\"bench\":\"K07\""));
        assert!(lines[1].contains("\"tm_opt\":10"));
        assert!(lines[1].contains("\"begun\":3"));
    }
}
