//! Figure 3: SMP-guarding checks in FTL code per 100 dynamic instructions,
//! broken into Bounds / Overflow / Type / Property / Other, for SunSpider
//! (a) and Kraken (b).
//!
//! Measurements run sharded over the `nomap-fleet` work queue (`--jobs N`
//! / `NOMAP_JOBS`); the print loop replays the canonical order, so stdout
//! is byte-identical for any worker count.

use nomap_bench::{
    fleet_from_env, heading, mean, measure_fleet_or_exit, subset, MeasureJob, Report,
};
use nomap_vm::{Architecture, CheckKind};
use nomap_workloads::fleet::report_summary;
use nomap_workloads::{evaluation_suites, RunSpec, Suite};

fn main() {
    let mut report = Report::from_env("fig3");
    let all = evaluation_suites();
    let fleet = fleet_from_env();
    let mut jobs = Vec::new();
    for suite in [Suite::SunSpider, Suite::Kraken] {
        for w in subset(&all, suite, false) {
            jobs.push(MeasureJob::new(&w, "Base", RunSpec::steady(Architecture::Base)));
        }
    }
    let measured = measure_fleet_or_exit(&jobs, &fleet);

    for (suite, label) in [(Suite::SunSpider, "(a) SunSpider"), (Suite::Kraken, "(b) Kraken")] {
        heading(&format!(
            "Figure 3{label} — FTL SMP-guarding checks per 100 dynamic instructions (Base)"
        ));
        println!(
            "{:<6} {:>8} {:>9} {:>7} {:>9} {:>7} {:>7}",
            "bench", "Bounds", "Overflow", "Type", "Property", "Other", "total"
        );
        let mut per_kind: Vec<Vec<f64>> = vec![Vec::new(); 5];
        let mut totals_s = Vec::new();
        let mut per_kind_t: Vec<Vec<f64>> = vec![Vec::new(); 5];
        let mut totals_t = Vec::new();
        for w in subset(&all, suite, false) {
            let stats = measured.stats(w.id, "Base");
            let row: Vec<f64> = CheckKind::ALL.iter().map(|&k| stats.checks_per_100(k)).collect();
            let total: f64 = row.iter().sum();
            report.stats(w.id, "Base", stats);
            report.row(vec![
                ("suite", format!("{suite:?}").into()),
                ("bench", w.id.into()),
                (
                    "checks_per_100",
                    nomap_trace::obj(vec![
                        ("bounds", row[0].into()),
                        ("overflow", row[1].into()),
                        ("type", row[2].into()),
                        ("property", row[3].into()),
                        ("other", row[4].into()),
                        ("total", total.into()),
                    ]),
                ),
            ]);
            if w.in_avgs {
                println!(
                    "{:<6} {:>8.2} {:>9.2} {:>7.2} {:>9.2} {:>7.2} {:>7.2}",
                    w.id, row[0], row[1], row[2], row[3], row[4], total
                );
                for (i, v) in row.iter().enumerate() {
                    per_kind[i].push(*v);
                }
                totals_s.push(total);
            }
            for (i, v) in row.iter().enumerate() {
                per_kind_t[i].push(*v);
            }
            totals_t.push(total);
        }
        println!(
            "{:<6} {:>8.2} {:>9.2} {:>7.2} {:>9.2} {:>7.2} {:>7.2}",
            "AvgS",
            mean(&per_kind[0]),
            mean(&per_kind[1]),
            mean(&per_kind[2]),
            mean(&per_kind[3]),
            mean(&per_kind[4]),
            mean(&totals_s)
        );
        println!(
            "{:<6} {:>8.2} {:>9.2} {:>7.2} {:>9.2} {:>7.2} {:>7.2}",
            "AvgT",
            mean(&per_kind_t[0]),
            mean(&per_kind_t[1]),
            mean(&per_kind_t[2]),
            mean(&per_kind_t[3]),
            mean(&per_kind_t[4]),
            mean(&totals_t)
        );
        for (avg, kinds, totals) in
            [("AvgS", &per_kind, &totals_s), ("AvgT", &per_kind_t, &totals_t)]
        {
            report.row(vec![
                ("suite", format!("{suite:?}").into()),
                ("bench", avg.into()),
                (
                    "checks_per_100",
                    nomap_trace::obj(vec![
                        ("bounds", mean(&kinds[0]).into()),
                        ("overflow", mean(&kinds[1]).into()),
                        ("type", mean(&kinds[2]).into()),
                        ("property", mean(&kinds[3]).into()),
                        ("other", mean(&kinds[4]).into()),
                        ("total", mean(totals).into()),
                    ]),
                ),
            ]);
        }
    }
    println!("\n(paper AvgT: 8.1 checks/100 in SunSpider, 8.5 in Kraken — one check every ~12 instructions)");
    report_summary(&measured.summary);
    report.finish();
}
