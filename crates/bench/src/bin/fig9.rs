//! Figure 9: Kraken normalized instruction counts (delegates to the
//! shared implementation in `fig8 --kraken`).

fn main() {
    // Keep a dedicated binary per figure for discoverability; reuse the
    // fig8 logic by exec-style delegation is overkill, so inline the call.
    std::process::exit(
        std::process::Command::new(std::env::current_exe().unwrap().with_file_name("fig8"))
            .arg("--kraken")
            .args(std::env::args().skip(1))
            .status()
            .map(|s| s.code().unwrap_or(1))
            .unwrap_or(1),
    );
}
