//! Figure 1: steady-state execution time of the Shootout benchmarks,
//! normalized to C, log scale.
//!
//! Substitution (DESIGN.md §2): "C" is the native Rust kernel's abstract
//! operation count; the original Python/PHP/Ruby bars are stood in for by
//! tier-capped configurations of this VM, which span the same
//! interpreter-to-JIT spectrum the figure illustrates.
//!
//! Measurements run sharded over the `nomap-fleet` work queue (`--jobs N`
//! / `NOMAP_JOBS`); the print loop replays the canonical order, so stdout
//! is byte-identical for any worker count.

use nomap_bench::{
    fleet_from_env, geo_mean, heading, measure_fleet_or_exit, MeasureJob, Report, STEADY_MEASURED,
};
use nomap_vm::{Architecture, TierLimit};
use nomap_workloads::fleet::report_summary;
use nomap_workloads::{native::run_native, shootout, RunSpec};

fn main() {
    heading("Figure 1 — Shootout execution time normalized to C (log scale)");
    let mut report = Report::from_env("fig1");
    let configs = [
        ("JS-FTL", TierLimit::Ftl),
        ("JS-DFG", TierLimit::Dfg),
        ("JS-Baseline", TierLimit::Baseline),
        ("Interpreter", TierLimit::Interpreter),
    ];
    let fleet = fleet_from_env();
    let mut jobs = Vec::new();
    for w in shootout() {
        for (name, limit) in configs {
            jobs.push(MeasureJob::new(&w, name, RunSpec::capped(Architecture::Base, limit)));
        }
    }
    let measured = measure_fleet_or_exit(&jobs, &fleet);

    println!(
        "{:<15} {:>7} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "C=1.0", "JS-FTL", "JS-DFG", "JS-Baseline", "Interpreter"
    );
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for w in shootout() {
        let native = run_native(w.id);
        let c_cycles = native.ops as f64;
        report.row(vec![
            ("bench", w.id.into()),
            ("config", "C".into()),
            ("native_ops", native.ops.into()),
        ]);
        let mut row = format!("{:<15} {:>7.2}", w.id, 1.0);
        for (ci, (name, _)) in configs.iter().enumerate() {
            let stats = measured.stats(w.id, name);
            let per_run = stats.total_cycles() as f64 / STEADY_MEASURED as f64;
            let ratio = per_run / c_cycles;
            ratios[ci].push(ratio);
            report.stats(w.id, name, stats);
            report.row(vec![
                ("bench", w.id.into()),
                ("config", (*name).into()),
                ("ratio_vs_c", ratio.into()),
            ]);
            row.push_str(&format!(" {:>10.2}", ratio));
        }
        println!("{row}");
    }
    let mut mean_row = format!("{:<15} {:>7.2}", "mean", 1.0);
    for (ci, r) in ratios.iter().enumerate() {
        report.row(vec![
            ("bench", "mean".into()),
            ("config", configs[ci].0.into()),
            ("ratio_vs_c", geo_mean(r).into()),
        ]);
        mean_row.push_str(&format!(" {:>10.2}", geo_mean(r)));
    }
    println!("{mean_row}");
    println!("\n(ratios are simulated cycles vs native abstract ops; see EXPERIMENTS.md)");
    report_summary(&measured.summary);
    report.finish();
}
