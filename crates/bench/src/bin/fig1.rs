//! Figure 1: steady-state execution time of the Shootout benchmarks,
//! normalized to C, log scale.
//!
//! Substitution (DESIGN.md §2): "C" is the native Rust kernel's abstract
//! operation count; the original Python/PHP/Ruby bars are stood in for by
//! tier-capped configurations of this VM, which span the same
//! interpreter-to-JIT spectrum the figure illustrates.

use nomap_bench::{geo_mean, heading, measure_capped, Report, STEADY_MEASURED};
use nomap_vm::TierLimit;
use nomap_workloads::{native::run_native, shootout};

fn main() {
    heading("Figure 1 — Shootout execution time normalized to C (log scale)");
    let mut report = Report::from_env("fig1");
    let configs = [
        ("JS-FTL", TierLimit::Ftl),
        ("JS-DFG", TierLimit::Dfg),
        ("JS-Baseline", TierLimit::Baseline),
        ("Interpreter", TierLimit::Interpreter),
    ];
    println!(
        "{:<15} {:>7} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "C=1.0", "JS-FTL", "JS-DFG", "JS-Baseline", "Interpreter"
    );
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for w in shootout() {
        let native = run_native(w.id);
        let c_cycles = native.ops as f64;
        report.row(vec![
            ("bench", w.id.into()),
            ("config", "C".into()),
            ("native_ops", native.ops.into()),
        ]);
        let mut row = format!("{:<15} {:>7.2}", w.id, 1.0);
        for (ci, (_, limit)) in configs.iter().enumerate() {
            let m = measure_capped(&w, *limit).expect("workload runs");
            let per_run = m.stats.total_cycles() as f64 / STEADY_MEASURED as f64;
            let ratio = per_run / c_cycles;
            ratios[ci].push(ratio);
            report.stats(w.id, configs[ci].0, &m.stats);
            report.row(vec![
                ("bench", w.id.into()),
                ("config", configs[ci].0.into()),
                ("ratio_vs_c", ratio.into()),
            ]);
            row.push_str(&format!(" {:>10.2}", ratio));
        }
        println!("{row}");
    }
    let mut mean_row = format!("{:<15} {:>7.2}", "mean", 1.0);
    for (ci, r) in ratios.iter().enumerate() {
        report.row(vec![
            ("bench", "mean".into()),
            ("config", configs[ci].0.into()),
            ("ratio_vs_c", geo_mean(r).into()),
        ]);
        mean_row.push_str(&format!(" {:>10.2}", geo_mean(r)));
    }
    println!("{mean_row}");
    println!("\n(ratios are simulated cycles vs native abstract ops; see EXPERIMENTS.md)");
    report.finish();
}
