//! Ablations of NoMap's design choices (DESIGN.md §5):
//!
//! 1. **Optimizer ablation** — which pass delivers how much of the NoMap
//!    win once SMPs become aborts? (GVN / LICM / accumulator promotion /
//!    phi untagging, each disabled in turn.)
//! 2. **Tile-size sweep** — §V-C strip-mining trades commit overhead
//!    against capacity aborts; sweep the chunk size on a large-footprint
//!    kernel.
//!
//! Measurements run sharded over the `nomap-fleet` work queue (`--jobs N`
//! / `NOMAP_JOBS`); the print loops replay the canonical order, so stdout
//! is byte-identical for any worker count.

use nomap_bench::{fleet_from_env, heading, measure_fleet_or_exit, MeasureJob, Report};
use nomap_vm::PassConfig;
use nomap_vm::{Architecture, TxnScope, VmConfig};
use nomap_workloads::fleet::report_summary;
use nomap_workloads::{kraken, sunspider, RunSpec};

/// The long-warmup spec these ablations have always used: `run_main`,
/// 251 warmup calls, then a 3-call measured window.
fn steady_spec(config: VmConfig) -> RunSpec {
    RunSpec { config, warmup: 251, measured: 3, cycle_budget: None }
}

fn main() {
    let mut report = Report::from_env("ablation");
    let picks: Vec<_> = sunspider()
        .into_iter()
        .filter(|w| w.id == "S13" || w.id == "S18")
        .chain(kraken().into_iter().filter(|w| w.id == "K07"))
        .collect();
    let variants: [(&str, PassConfig); 6] = [
        ("full", PassConfig::ftl()),
        ("-gvn", PassConfig { gvn: false, ..PassConfig::ftl() }),
        ("-licm", PassConfig { licm: false, ..PassConfig::ftl() }),
        ("-promote", PassConfig { promote: false, ..PassConfig::ftl() }),
        ("-untag", PassConfig { untag: false, ..PassConfig::ftl() }),
        ("none", PassConfig::dfg()),
    ];
    let k07 = kraken().into_iter().find(|w| w.id == "K07").unwrap();
    let scopes = [
        ("Nest", TxnScope::Nest),
        ("Inner", TxnScope::Inner),
        ("Tiled(1024)", TxnScope::InnerTiled(1024)),
        ("Tiled(256)", TxnScope::InnerTiled(256)),
        ("Tiled(64)", TxnScope::InnerTiled(64)),
        ("Tiled(16)", TxnScope::InnerTiled(16)),
    ];
    let k05 = kraken().into_iter().find(|w| w.id == "K05").unwrap();

    let fleet = fleet_from_env();
    let mut jobs = Vec::new();
    for w in &picks {
        for (name, passes) in variants {
            let mut cfg = VmConfig::new(Architecture::NoMap);
            cfg.ftl_passes = Some(passes);
            jobs.push(MeasureJob::new(w, &format!("passes:{name}"), steady_spec(cfg)));
        }
    }
    for (name, scope) in scopes {
        let mut cfg = VmConfig::new(Architecture::NoMap);
        cfg.initial_scope = Some(scope);
        jobs.push(MeasureJob::new(&k07, &format!("scope:{name}"), steady_spec(cfg)));
    }
    for (name, on) in [("NoMap (paper)", false), ("NoMap + txn callees", true)] {
        let mut cfg = VmConfig::new(Architecture::NoMap);
        cfg.txn_callees = on;
        jobs.push(MeasureJob::new(&k05, name, steady_spec(cfg)));
    }
    let measured = measure_fleet_or_exit(&jobs, &fleet);

    heading(
        "Ablation 1 — optimizer passes under NoMap (S13 crypto-aes, S18 cordic, K07 desaturate)",
    );
    println!("{:<6} {:<10} {:>12} {:>12} {:>9}", "bench", "passes", "insts", "cycles", "checks");
    for w in &picks {
        let mut full = 0u64;
        for (name, _) in variants {
            let s = measured.stats(w.id, &format!("passes:{name}"));
            if name == "full" {
                full = s.total_insts();
            }
            report.stats(w.id, &format!("passes:{name}"), s);
            report.row(vec![
                ("section", "optimizer".into()),
                ("bench", w.id.into()),
                ("variant", name.into()),
                ("insts", s.total_insts().into()),
                ("cycles", s.total_cycles().into()),
                ("checks", s.total_checks().into()),
                (
                    "insts_vs_full_pct",
                    (100.0 * (s.total_insts() as f64 - full as f64) / full as f64).into(),
                ),
            ]);
            println!(
                "{:<6} {:<10} {:>12} {:>12} {:>9}  ({:+.1}% vs full)",
                w.id,
                name,
                s.total_insts(),
                s.total_cycles(),
                s.total_checks(),
                100.0 * (s.total_insts() as f64 - full as f64) / full as f64,
            );
        }
    }

    heading("Ablation 2 — §V-C tile-size sweep on a large-footprint kernel (K07)");
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>10} {:>14}",
        "initial scope", "insts", "cycles", "commits", "cap.aborts", "avg foot KB"
    );
    for (name, _) in scopes {
        let s = measured.stats(k07.id, &format!("scope:{name}"));
        report.stats(k07.id, &format!("scope:{name}"), s);
        report.row(vec![
            ("section", "tile-size".into()),
            ("bench", k07.id.into()),
            ("scope", name.into()),
            ("insts", s.total_insts().into()),
            ("cycles", s.total_cycles().into()),
            ("commits", s.tx_committed.into()),
            ("capacity_aborts", s.tx_aborts[1].into()),
            ("footprint_avg_kb", (s.tx_character.footprint_avg() / 1024.0).into()),
        ]);
        println!(
            "{:<16} {:>12} {:>12} {:>9} {:>10} {:>14.1}",
            name,
            s.total_insts(),
            s.total_cycles(),
            s.tx_committed,
            s.tx_aborts[1],
            s.tx_character.footprint_avg() / 1024.0,
        );
    }
    println!(
        "\nSmaller tiles bound the write footprint (→ no capacity aborts even on\n\
         RTM) at the price of more XBegin/XEnd commits per run."
    );

    heading("Ablation 3 — transaction-aware callees (extension; the paper's TMUnopt limitation)");
    println!("{:<22} {:>12} {:>12} {:>10} {:>10}", "config", "insts", "cycles", "TMUnopt", "TMOpt");
    for (name, _) in [("NoMap (paper)", false), ("NoMap + txn callees", true)] {
        let s = measured.stats(k05.id, name);
        report.stats(k05.id, name, s);
        report.row(vec![
            ("section", "txn-callees".into()),
            ("bench", k05.id.into()),
            ("config", name.into()),
            ("insts", s.total_insts().into()),
            ("cycles", s.total_cycles().into()),
            ("tm_unopt", s.insts(nomap_vm::InstCategory::TmUnopt).into()),
            ("tm_opt", s.insts(nomap_vm::InstCategory::TmOpt).into()),
        ]);
        println!(
            "{:<22} {:>12} {:>12} {:>10} {:>10}",
            name,
            s.total_insts(),
            s.total_cycles(),
            s.insts(nomap_vm::InstCategory::TmUnopt),
            s.insts(nomap_vm::InstCategory::TmOpt),
        );
    }
    println!(
        "\nCompiling hot callees transaction-aware converts their SMPs to aborts\n\
         of the caller's transaction, eliminating the TMUnopt category the\n\
         paper observes on K05/K06."
    );
    report_summary(&measured.summary);
    report.finish();
}
