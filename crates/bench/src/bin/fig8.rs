//! Figures 8 and 9: dynamic instruction counts per configuration,
//! normalized to Base and broken into NoFTL / NoTM / TMUnopt / TMOpt.
//! Pass `--kraken` for Figure 9; default is Figure 8 (SunSpider).
//!
//! Measurements run sharded over the `nomap-fleet` work queue (`--jobs N`
//! / `NOMAP_JOBS`); the print loop replays the canonical order, so stdout
//! is byte-identical for any worker count.

use nomap_bench::{
    fleet_from_env, heading, mean, measure_fleet_or_exit, subset, MeasureJob, Report,
};
use nomap_vm::{Architecture, InstCategory};
use nomap_workloads::fleet::report_summary;
use nomap_workloads::{evaluation_suites, RunSpec, Suite};

fn main() {
    let kraken = std::env::args().any(|a| a == "--kraken");
    let (suite, fig) = if kraken { (Suite::Kraken, "9") } else { (Suite::SunSpider, "8") };
    run(suite, fig);
}

fn run(suite: Suite, fig: &str) {
    heading(&format!(
        "Figure {fig} — normalized instruction counts ({suite:?}): NoFTL/NoTM/TMUnopt/TMOpt"
    ));
    let mut report = Report::from_env(&format!("fig{fig}"));
    let all = evaluation_suites();
    let fleet = fleet_from_env();
    let mut jobs = Vec::new();
    for w in subset(&all, suite, false) {
        for arch in Architecture::ALL {
            jobs.push(MeasureJob::new(&w, arch.name(), RunSpec::steady(arch)));
        }
    }
    let measured = measure_fleet_or_exit(&jobs, &fleet);

    println!(
        "{:<6} {:<10} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "bench", "config", "NoFTL", "NoTM", "TMUnopt", "TMOpt", "total"
    );
    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); Architecture::ALL.len()];
    let mut totals_t: Vec<Vec<f64>> = vec![Vec::new(); Architecture::ALL.len()];
    for w in subset(&all, suite, false) {
        let base_total =
            measured.stats(w.id, Architecture::Base.name()).total_insts().max(1) as f64;
        for (ai, arch) in Architecture::ALL.iter().enumerate() {
            let stats = measured.stats(w.id, arch.name());
            let frac = |c: InstCategory| stats.insts(c) as f64 / base_total;
            let total = stats.total_insts() as f64 / base_total;
            report.stats(w.id, arch.name(), stats);
            report.row(vec![
                ("bench", w.id.into()),
                ("config", arch.name().into()),
                (
                    "normalized",
                    nomap_trace::obj(vec![
                        ("no_ftl", frac(InstCategory::NoFtl).into()),
                        ("no_tm", frac(InstCategory::NoTm).into()),
                        ("tm_unopt", frac(InstCategory::TmUnopt).into()),
                        ("tm_opt", frac(InstCategory::TmOpt).into()),
                        ("total", total.into()),
                    ]),
                ),
            ]);
            if w.in_avgs {
                println!(
                    "{:<6} {:<10} {:>8.3} {:>8.3} {:>9.3} {:>8.3} {:>8.3}",
                    w.id,
                    arch.name(),
                    frac(InstCategory::NoFtl),
                    frac(InstCategory::NoTm),
                    frac(InstCategory::TmUnopt),
                    frac(InstCategory::TmOpt),
                    total
                );
                totals[ai].push(total);
            }
            totals_t[ai].push(total);
        }
    }
    println!("\nNormalized total instructions (1.0 = Base):");
    println!("{:<10} {:>8} {:>8}", "config", "AvgS", "AvgT");
    for (ai, arch) in Architecture::ALL.iter().enumerate() {
        println!("{:<10} {:>8.3} {:>8.3}", arch.name(), mean(&totals[ai]), mean(&totals_t[ai]));
        report.row(vec![
            ("config", arch.name().into()),
            ("avgs", mean(&totals[ai]).into()),
            ("avgt", mean(&totals_t[ai]).into()),
        ]);
    }
    if suite == Suite::SunSpider {
        println!("\n(paper AvgS: NoMap_S 0.937, NoMap_B 0.914, NoMap 0.858, NoMap_BC 0.829, NoMap_RTM 0.949)");
    } else {
        println!("\n(paper AvgS: NoMap 0.885, NoMap_BC 0.820, NoMap_RTM ~1.0)");
    }
    report_summary(&measured.summary);
    report.finish();
}
