//! §III-A2: frequency of invoking deoptimization SMPs. The paper runs each
//! suite 1000 times and observes <50 deoptimizations over ~85M FTL calls;
//! here each workload runs a configurable number of times (default 50).

use nomap_bench::{heading, Report};
use nomap_vm::{Architecture, Vm};
use nomap_workloads::evaluation_suites;

fn main() {
    let reps: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(50);
    heading(&format!("Deoptimization frequency (Base config, {reps} repetitions per benchmark)"));
    let mut report = Report::from_env("deopt_freq");
    let mut total_deopts = 0u64;
    let mut total_runs = 0u64;
    let mut with_deopts = 0usize;
    for w in evaluation_suites() {
        let mut vm = Vm::new(w.source, Architecture::Base).expect("compiles");
        vm.run_main().expect("main");
        for _ in 0..120 {
            vm.call("run", &[]).expect("warmup");
        }
        vm.reset_stats();
        for _ in 0..reps {
            vm.call("run", &[]).expect("measured");
        }
        total_runs += reps as u64;
        total_deopts += vm.stats.deopts;
        report.stats(w.id, "Base", &vm.stats);
        report.row(vec![
            ("bench", w.id.into()),
            ("deopts", vm.stats.deopts.into()),
            ("runs", (reps as u64).into()),
        ]);
        if vm.stats.deopts > 0 {
            with_deopts += 1;
            println!("{:<6} {} deopts in {} runs", w.id, vm.stats.deopts, reps);
        }
    }
    println!(
        "\ntotal: {total_deopts} deoptimizations across {total_runs} steady-state runs \
         ({with_deopts} benchmarks ever deoptimized)"
    );
    println!("(paper: <50 deoptimizations in ~85M FTL function calls; after ~50 iterations checks practically never fail)");
    report.row(vec![
        ("bench", "total".into()),
        ("deopts", total_deopts.into()),
        ("runs", total_runs.into()),
        ("benchmarks_with_deopts", with_deopts.into()),
    ]);
    report.finish();
}
