//! §III-A2: frequency of invoking deoptimization SMPs. The paper runs each
//! suite 1000 times and observes <50 deoptimizations over ~85M FTL calls;
//! here each workload runs a configurable number of times (default 50).
//!
//! Measurements run sharded over the `nomap-fleet` work queue (`--jobs N`
//! / `NOMAP_JOBS`); the print loop replays the canonical order, so stdout
//! is byte-identical for any worker count.

use nomap_bench::{fleet_from_env, heading, measure_fleet_or_exit, MeasureJob, Report};
use nomap_vm::{Architecture, VmConfig};
use nomap_workloads::fleet::report_summary;
use nomap_workloads::{evaluation_suites, RunSpec};

/// First free-standing numeric argument = repetition count. Flag values
/// (`--jobs 4`) must not be mistaken for it, so flags and their values
/// are skipped explicitly.
fn reps_from_args() -> u32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--jobs" {
            i += 2;
            continue;
        }
        if a.starts_with("--") {
            i += 1;
            continue;
        }
        if let Ok(n) = a.parse::<u32>() {
            return n;
        }
        i += 1;
    }
    50
}

fn main() {
    let reps = reps_from_args();
    heading(&format!("Deoptimization frequency (Base config, {reps} repetitions per benchmark)"));
    let mut report = Report::from_env("deopt_freq");
    let fleet = fleet_from_env();
    let spec = RunSpec {
        config: VmConfig::new(Architecture::Base),
        warmup: 120,
        measured: reps,
        cycle_budget: None,
    };
    let jobs: Vec<MeasureJob> =
        evaluation_suites().iter().map(|w| MeasureJob::new(w, "Base", spec)).collect();
    let measured = measure_fleet_or_exit(&jobs, &fleet);

    let mut total_deopts = 0u64;
    let mut total_runs = 0u64;
    let mut with_deopts = 0usize;
    for w in evaluation_suites() {
        let stats = measured.stats(w.id, "Base");
        total_runs += reps as u64;
        total_deopts += stats.deopts;
        report.stats(w.id, "Base", stats);
        report.row(vec![
            ("bench", w.id.into()),
            ("deopts", stats.deopts.into()),
            ("runs", (reps as u64).into()),
        ]);
        if stats.deopts > 0 {
            with_deopts += 1;
            println!("{:<6} {} deopts in {} runs", w.id, stats.deopts, reps);
        }
    }
    println!(
        "\ntotal: {total_deopts} deoptimizations across {total_runs} steady-state runs \
         ({with_deopts} benchmarks ever deoptimized)"
    );
    println!("(paper: <50 deoptimizations in ~85M FTL function calls; after ~50 iterations checks practically never fail)");
    report.row(vec![
        ("bench", "total".into()),
        ("deopts", total_deopts.into()),
        ("runs", total_runs.into()),
        ("benchmarks_with_deopts", with_deopts.into()),
    ]);
    report_summary(&measured.summary);
    report.finish();
}
