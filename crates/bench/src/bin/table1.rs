//! Table I: speedup of each JavaScriptCore tier over the Interpreter, for
//! the SunSpider and Kraken suites (AvgS and AvgT columns).
//!
//! Measurements run sharded over the `nomap-fleet` work queue (`--jobs N`
//! / `NOMAP_JOBS`); the print loop replays the canonical order, so stdout
//! is byte-identical for any worker count.

use std::collections::BTreeMap;

use nomap_bench::{
    fleet_from_env, geo_mean, heading, measure_fleet_or_exit, subset, MeasureJob, Report,
};
use nomap_vm::{Architecture, TierLimit};
use nomap_workloads::{evaluation_suites, RunSpec, Suite};

fn main() {
    heading("Table I — Speedup of tiers over the Interpreter");
    let mut report = Report::from_env("table1");
    let suites = [(Suite::SunSpider, "SunSpider"), (Suite::Kraken, "Kraken")];
    let tiers =
        [("Baseline", TierLimit::Baseline), ("DFG", TierLimit::Dfg), ("FTL", TierLimit::Ftl)];
    let all = evaluation_suites();
    let fleet = fleet_from_env();
    let mut jobs = Vec::new();
    for w in &all {
        jobs.push(MeasureJob::new(
            w,
            "Interpreter",
            RunSpec::capped(Architecture::Base, TierLimit::Interpreter),
        ));
    }
    for (name, limit) in tiers {
        for w in &all {
            jobs.push(MeasureJob::new(w, name, RunSpec::capped(Architecture::Base, limit)));
        }
    }
    let measured = measure_fleet_or_exit(&jobs, &fleet);

    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "Highest", "SunSpider", "SunSpider", "Kraken", "Kraken"
    );
    println!("{:<10} {:>14} {:>14} {:>14} {:>14}", "Tier", "AvgS", "AvgT", "AvgS", "AvgT");
    // Baseline: interpreter cycles per workload (BTreeMap: deterministic
    // iteration order were anyone ever to iterate it into a report).
    let mut interp: BTreeMap<String, f64> = BTreeMap::new();
    for w in &all {
        let stats = measured.stats(w.id, "Interpreter");
        report.stats(w.id, "Interpreter", stats);
        interp.insert(w.id.to_owned(), stats.total_cycles() as f64);
    }
    for (name, _) in tiers {
        let mut cols = Vec::new();
        for (suite, _) in suites {
            for avgs in [true, false] {
                let ws = subset(&all, suite, avgs);
                let speedups: Vec<f64> = ws
                    .iter()
                    .map(|w| {
                        let stats = measured.stats(w.id, name);
                        let speedup = interp[w.id] / stats.total_cycles().max(1) as f64;
                        report.stats(w.id, name, stats);
                        report.row(vec![
                            ("bench", w.id.into()),
                            ("tier", name.into()),
                            ("speedup_vs_interp", speedup.into()),
                        ]);
                        speedup
                    })
                    .collect();
                report.row(vec![
                    ("tier", name.into()),
                    ("suite", format!("{suite:?}").into()),
                    ("avg", if avgs { "AvgS" } else { "AvgT" }.into()),
                    ("speedup_vs_interp", geo_mean(&speedups).into()),
                ]);
                cols.push(geo_mean(&speedups));
            }
        }
        println!(
            "{:<10} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
            name, cols[0], cols[1], cols[2], cols[3]
        );
    }
    println!("\n(paper: Baseline 2.13/1.88/1.22/0.87, DFG 7.71/6.64/8.45/6.67, FTL 11.48/9.37/15.03/10.94)");
    nomap_workloads::fleet::report_summary(&measured.summary);
    report.finish();
}
