//! Table I: speedup of each JavaScriptCore tier over the Interpreter, for
//! the SunSpider and Kraken suites (AvgS and AvgT columns).

use nomap_bench::{geo_mean, heading, measure_capped, subset, Report};
use nomap_vm::TierLimit;
use nomap_workloads::{evaluation_suites, Suite};

fn main() {
    heading("Table I — Speedup of tiers over the Interpreter");
    let mut report = Report::from_env("table1");
    let suites = [(Suite::SunSpider, "SunSpider"), (Suite::Kraken, "Kraken")];
    let tiers =
        [("Baseline", TierLimit::Baseline), ("DFG", TierLimit::Dfg), ("FTL", TierLimit::Ftl)];
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "Highest", "SunSpider", "SunSpider", "Kraken", "Kraken"
    );
    println!("{:<10} {:>14} {:>14} {:>14} {:>14}", "Tier", "AvgS", "AvgT", "AvgS", "AvgT");
    // Baseline: interpreter cycles per workload.
    let mut interp: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let all = evaluation_suites();
    for w in &all {
        let m = measure_capped(w, TierLimit::Interpreter).expect("interp run");
        report.stats(w.id, "Interpreter", &m.stats);
        interp.insert(w.id.to_owned(), m.stats.total_cycles() as f64);
    }
    for (name, limit) in tiers {
        let mut cols = Vec::new();
        for (suite, _) in suites {
            for avgs in [true, false] {
                let ws = subset(&all, suite, avgs);
                let speedups: Vec<f64> = ws
                    .iter()
                    .map(|w| {
                        let m = measure_capped(w, limit).expect("tier run");
                        let speedup = interp[w.id] / m.stats.total_cycles().max(1) as f64;
                        report.stats(w.id, name, &m.stats);
                        report.row(vec![
                            ("bench", w.id.into()),
                            ("tier", name.into()),
                            ("speedup_vs_interp", speedup.into()),
                        ]);
                        speedup
                    })
                    .collect();
                report.row(vec![
                    ("tier", name.into()),
                    ("suite", format!("{suite:?}").into()),
                    ("avg", if avgs { "AvgS" } else { "AvgT" }.into()),
                    ("speedup_vs_interp", geo_mean(&speedups).into()),
                ]);
                cols.push(geo_mean(&speedups));
            }
        }
        println!(
            "{:<10} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
            name, cols[0], cols[1], cols[2], cols[3]
        );
    }
    println!("\n(paper: Baseline 2.13/1.88/1.22/0.87, DFG 7.71/6.64/8.45/6.67, FTL 11.48/9.37/15.03/10.94)");
    report.finish();
}
