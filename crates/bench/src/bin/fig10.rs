//! Figures 10 and 11: execution time per configuration, normalized to
//! Base and broken into TMTime / NonTMTime. Pass `--kraken` for Figure 11;
//! default is Figure 10 (SunSpider).
//!
//! Measurements run sharded over the `nomap-fleet` work queue (`--jobs N`
//! / `NOMAP_JOBS`); the print loop replays the canonical order, so stdout
//! is byte-identical for any worker count.

use nomap_bench::{
    fleet_from_env, heading, mean, measure_fleet_or_exit, subset, MeasureJob, Report,
};
use nomap_vm::Architecture;
use nomap_workloads::fleet::report_summary;
use nomap_workloads::{evaluation_suites, RunSpec, Suite};

fn main() {
    let kraken = std::env::args().any(|a| a == "--kraken");
    let (suite, fig) = if kraken { (Suite::Kraken, "11") } else { (Suite::SunSpider, "10") };
    heading(&format!("Figure {fig} — normalized execution time ({suite:?}): TMTime/NonTMTime"));
    let mut report = Report::from_env(&format!("fig{fig}"));
    let all = evaluation_suites();
    let fleet = fleet_from_env();
    let mut jobs = Vec::new();
    for w in subset(&all, suite, false) {
        for arch in Architecture::ALL {
            jobs.push(MeasureJob::new(&w, arch.name(), RunSpec::steady(arch)));
        }
    }
    let measured = measure_fleet_or_exit(&jobs, &fleet);

    println!("{:<6} {:<10} {:>9} {:>10} {:>8}", "bench", "config", "TMTime", "NonTMTime", "total");
    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); Architecture::ALL.len()];
    let mut totals_t: Vec<Vec<f64>> = vec![Vec::new(); Architecture::ALL.len()];
    for w in subset(&all, suite, false) {
        let base_cycles =
            measured.stats(w.id, Architecture::Base.name()).total_cycles().max(1) as f64;
        for (ai, arch) in Architecture::ALL.iter().enumerate() {
            let stats = measured.stats(w.id, arch.name());
            let tm = stats.cycles_tm as f64 / base_cycles;
            let non = stats.cycles_non_tm as f64 / base_cycles;
            report.stats(w.id, arch.name(), stats);
            report.row(vec![
                ("bench", w.id.into()),
                ("config", arch.name().into()),
                (
                    "normalized",
                    nomap_trace::obj(vec![
                        ("tm_time", tm.into()),
                        ("non_tm_time", non.into()),
                        ("total", (tm + non).into()),
                    ]),
                ),
            ]);
            if w.in_avgs {
                println!(
                    "{:<6} {:<10} {:>9.3} {:>10.3} {:>8.3}",
                    w.id,
                    arch.name(),
                    tm,
                    non,
                    tm + non
                );
                totals[ai].push(tm + non);
            }
            totals_t[ai].push(tm + non);
        }
    }
    println!("\nNormalized execution time (1.0 = Base):");
    println!("{:<10} {:>8} {:>8}", "config", "AvgS", "AvgT");
    for (ai, arch) in Architecture::ALL.iter().enumerate() {
        println!("{:<10} {:>8.3} {:>8.3}", arch.name(), mean(&totals[ai]), mean(&totals_t[ai]));
        report.row(vec![
            ("config", arch.name().into()),
            ("avgs", mean(&totals[ai]).into()),
            ("avgt", mean(&totals_t[ai]).into()),
        ]);
    }
    if suite == Suite::SunSpider {
        println!("\n(paper AvgS: NoMap 0.833 — a 16.7% reduction; NoMap_RTM 0.935)");
    } else {
        println!("\n(paper AvgS: NoMap 0.911 — an 8.9% reduction; NoMap_RTM ~1.0)");
    }
    report_summary(&measured.summary);
    report.finish();
}
