//! Figures 10 and 11: execution time per configuration, normalized to
//! Base and broken into TMTime / NonTMTime. Pass `--kraken` for Figure 11;
//! default is Figure 10 (SunSpider).

use nomap_bench::{heading, mean, measure, subset, Report};
use nomap_vm::Architecture;
use nomap_workloads::{evaluation_suites, Suite};

fn main() {
    let kraken = std::env::args().any(|a| a == "--kraken");
    let (suite, fig) = if kraken { (Suite::Kraken, "11") } else { (Suite::SunSpider, "10") };
    heading(&format!("Figure {fig} — normalized execution time ({suite:?}): TMTime/NonTMTime"));
    let mut report = Report::from_env(&format!("fig{fig}"));
    let all = evaluation_suites();
    println!("{:<6} {:<10} {:>9} {:>10} {:>8}", "bench", "config", "TMTime", "NonTMTime", "total");
    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); Architecture::ALL.len()];
    let mut totals_t: Vec<Vec<f64>> = vec![Vec::new(); Architecture::ALL.len()];
    for w in subset(&all, suite, false) {
        let base = measure(&w, Architecture::Base).expect("base run");
        let base_cycles = base.stats.total_cycles().max(1) as f64;
        for (ai, arch) in Architecture::ALL.iter().enumerate() {
            let m = if *arch == Architecture::Base {
                base.clone()
            } else {
                measure(&w, *arch).expect("arch run")
            };
            let tm = m.stats.cycles_tm as f64 / base_cycles;
            let non = m.stats.cycles_non_tm as f64 / base_cycles;
            report.stats(w.id, arch.name(), &m.stats);
            report.row(vec![
                ("bench", w.id.into()),
                ("config", arch.name().into()),
                (
                    "normalized",
                    nomap_trace::obj(vec![
                        ("tm_time", tm.into()),
                        ("non_tm_time", non.into()),
                        ("total", (tm + non).into()),
                    ]),
                ),
            ]);
            if w.in_avgs {
                println!(
                    "{:<6} {:<10} {:>9.3} {:>10.3} {:>8.3}",
                    w.id,
                    arch.name(),
                    tm,
                    non,
                    tm + non
                );
                totals[ai].push(tm + non);
            }
            totals_t[ai].push(tm + non);
        }
    }
    println!("\nNormalized execution time (1.0 = Base):");
    println!("{:<10} {:>8} {:>8}", "config", "AvgS", "AvgT");
    for (ai, arch) in Architecture::ALL.iter().enumerate() {
        println!("{:<10} {:>8.3} {:>8.3}", arch.name(), mean(&totals[ai]), mean(&totals_t[ai]));
        report.row(vec![
            ("config", arch.name().into()),
            ("avgs", mean(&totals[ai]).into()),
            ("avgt", mean(&totals_t[ai]).into()),
        ]);
    }
    if suite == Suite::SunSpider {
        println!("\n(paper AvgS: NoMap 0.833 — a 16.7% reduction; NoMap_RTM 0.935)");
    } else {
        println!("\n(paper AvgS: NoMap 0.911 — an 8.9% reduction; NoMap_RTM ~1.0)");
    }
    report.finish();
}
