//! Figure 11: Kraken normalized execution time (delegates to
//! `fig10 --kraken`).

fn main() {
    std::process::exit(
        std::process::Command::new(std::env::current_exe().unwrap().with_file_name("fig10"))
            .arg("--kraken")
            .args(std::env::args().skip(1))
            .status()
            .map(|s| s.code().unwrap_or(1))
            .unwrap_or(1),
    );
}
