//! Table IV: characterization of the transactions NoMap inserts — average
//! and maximum write footprint, and the maximum cache associativity any
//! set needed to hold speculative state.
//!
//! Measurements run sharded over the `nomap-fleet` work queue (`--jobs N`
//! / `NOMAP_JOBS`); the print loop replays the canonical order, so stdout
//! is byte-identical for any worker count.

use nomap_bench::{
    fleet_from_env, heading, mean, measure_fleet_or_exit, subset, MeasureJob, Report,
};
use nomap_vm::Architecture;
use nomap_workloads::fleet::report_summary;
use nomap_workloads::{evaluation_suites, RunSpec, Suite};

fn main() {
    heading("Table IV — transaction characterization under NoMap (ROT)");
    let mut report = Report::from_env("table4");
    let all = evaluation_suites();
    let fleet = fleet_from_env();
    let mut jobs = Vec::new();
    for suite in [Suite::SunSpider, Suite::Kraken] {
        for w in subset(&all, suite, true) {
            jobs.push(MeasureJob::new(&w, "NoMap", RunSpec::steady(Architecture::NoMap)));
            jobs.push(MeasureJob::new(&w, "NoMap_RTM", RunSpec::steady(Architecture::NoMapRtm)));
        }
    }
    let measured = measure_fleet_or_exit(&jobs, &fleet);

    println!(
        "{:<10} {:>14} {:>14} {:>10} {:>14} {:>12}",
        "suite", "wrFoot avg KB", "wrFoot max KB", "max assoc", "insts/txn avg", "commits"
    );
    for (suite, label) in [(Suite::SunSpider, "SunSpider"), (Suite::Kraken, "Kraken")] {
        let ws = subset(&all, suite, true); // AvgS benchmarks, as in the paper
        let mut avg_foot = Vec::new();
        let mut max_foot = 0u64;
        let mut max_assoc = 0u32;
        let mut insts = Vec::new();
        let mut commits = 0u64;
        for w in &ws {
            let stats = measured.stats(w.id, "NoMap");
            report.stats(w.id, "NoMap", stats);
            let c = stats.tx_character;
            if c.committed > 0 {
                avg_foot.push(c.footprint_avg() / 1024.0);
                insts.push(c.insts_avg());
            }
            max_foot = max_foot.max(c.footprint_max);
            max_assoc = max_assoc.max(c.max_assoc);
            commits += stats.tx_committed;
        }
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>10} {:>14.0} {:>12}",
            label,
            mean(&avg_foot),
            max_foot as f64 / 1024.0,
            max_assoc,
            mean(&insts),
            commits
        );
        report.row(vec![
            ("suite", label.into()),
            ("footprint_avg_kb", mean(&avg_foot).into()),
            ("footprint_max_kb", (max_foot as f64 / 1024.0).into()),
            ("max_assoc", max_assoc.into()),
            ("insts_per_txn_avg", mean(&insts).into()),
            ("commits", commits.into()),
        ]);
    }
    // Read-set characterization under the restricted RTM model, where
    // speculative reads are tracked in the L2 (the ROT rows above report
    // zero read footprint by construction — reads are unbounded there).
    // Print-only: these rows are not part of the BENCH_table4.json perf
    // baseline.
    println!();
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12}",
        "RTM", "rdFoot avg KB", "rdFoot max KB", "wrFoot avg KB", "commits"
    );
    for (suite, label) in [(Suite::SunSpider, "SunSpider"), (Suite::Kraken, "Kraken")] {
        let ws = subset(&all, suite, true);
        let mut avg_read = Vec::new();
        let mut max_read = 0u64;
        let mut avg_write = Vec::new();
        let mut commits = 0u64;
        for w in &ws {
            let stats = measured.stats(w.id, "NoMap_RTM");
            let c = stats.tx_character;
            if c.committed > 0 {
                avg_read.push(c.read_footprint_avg() / 1024.0);
                avg_write.push(c.footprint_avg() / 1024.0);
            }
            max_read = max_read.max(c.read_footprint_max);
            commits += stats.tx_committed;
        }
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>14.2} {:>12}",
            label,
            mean(&avg_read),
            max_read as f64 / 1024.0,
            mean(&avg_write),
            commits
        );
    }
    println!("\n(paper: avg write footprints of 44.9KB/47.4KB fit amply in the 256KB L2)");
    report_summary(&measured.summary);
    report.finish();
}
