//! Table IV: characterization of the transactions NoMap inserts — average
//! and maximum write footprint, and the maximum cache associativity any
//! set needed to hold speculative state.

use nomap_bench::{heading, mean, measure, subset, Report};
use nomap_vm::Architecture;
use nomap_workloads::{evaluation_suites, Suite};

fn main() {
    heading("Table IV — transaction characterization under NoMap (ROT)");
    let mut report = Report::from_env("table4");
    println!(
        "{:<10} {:>14} {:>14} {:>10} {:>14} {:>12}",
        "suite", "wrFoot avg KB", "wrFoot max KB", "max assoc", "insts/txn avg", "commits"
    );
    let all = evaluation_suites();
    for (suite, label) in [(Suite::SunSpider, "SunSpider"), (Suite::Kraken, "Kraken")] {
        let ws = subset(&all, suite, true); // AvgS benchmarks, as in the paper
        let mut avg_foot = Vec::new();
        let mut max_foot = 0u64;
        let mut max_assoc = 0u32;
        let mut insts = Vec::new();
        let mut commits = 0u64;
        for w in &ws {
            let m = measure(w, Architecture::NoMap).expect("nomap run");
            report.stats(w.id, "NoMap", &m.stats);
            let c = m.stats.tx_character;
            if c.committed > 0 {
                avg_foot.push(c.footprint_avg() / 1024.0);
                insts.push(c.insts_avg());
            }
            max_foot = max_foot.max(c.footprint_max);
            max_assoc = max_assoc.max(c.max_assoc);
            commits += m.stats.tx_committed;
        }
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>10} {:>14.0} {:>12}",
            label,
            mean(&avg_foot),
            max_foot as f64 / 1024.0,
            max_assoc,
            mean(&insts),
            commits
        );
        report.row(vec![
            ("suite", label.into()),
            ("footprint_avg_kb", mean(&avg_foot).into()),
            ("footprint_max_kb", (max_foot as f64 / 1024.0).into()),
            ("max_assoc", max_assoc.into()),
            ("insts_per_txn_avg", mean(&insts).into()),
            ("commits", commits.into()),
        ]);
    }
    println!("\n(paper: avg write footprints of 44.9KB/47.4KB fit amply in the 256KB L2)");
    report.finish();
}
