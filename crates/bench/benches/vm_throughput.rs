//! Criterion benches: host-side throughput of the simulator on
//! representative kernels, one group per paper artifact family. These do
//! not regenerate paper numbers (the `src/bin/*` binaries do); they track
//! the reproduction's own performance so simulator regressions are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use nomap_vm::{Architecture, Vm};
use nomap_workloads::{shootout, sunspider};

fn warm_vm(src: &str, arch: Architecture) -> Vm {
    let mut vm = Vm::new(src, arch).expect("compiles");
    vm.run_main().expect("main");
    for _ in 0..120 {
        vm.call("run", &[]).expect("warmup");
    }
    vm
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state");
    group.sample_size(10);
    for (pick, arch) in [
        ("fibo", Architecture::Base),
        ("fibo", Architecture::NoMap),
        ("sieve", Architecture::Base),
        ("sieve", Architecture::NoMap),
    ] {
        let w = shootout().into_iter().find(|w| w.id == pick).unwrap();
        let mut vm = warm_vm(w.source, arch);
        group.bench_function(format!("{pick}/{}", arch.name()), |b| {
            b.iter(|| vm.call("run", &[]).unwrap());
        });
    }
    group.finish();
}

fn bench_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tier_up");
    group.sample_size(10);
    let w = sunspider().into_iter().find(|w| w.id == "S14").unwrap();
    group.bench_function("S14/cold_to_ftl", |b| {
        b.iter(|| {
            let mut vm = Vm::new(w.source, Architecture::NoMap).unwrap();
            vm.run_main().unwrap();
            for _ in 0..80 {
                vm.call("run", &[]).unwrap();
            }
            vm.stats.total_insts()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_steady_state, bench_compilation);
criterion_main!(benches);
