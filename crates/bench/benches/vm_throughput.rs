//! Host-side throughput of the simulator on representative kernels, one
//! group per paper artifact family. These do not regenerate paper numbers
//! (the `src/bin/*` binaries do); they track the reproduction's own
//! performance so simulator regressions are caught.
//!
//! Plain `std::time` harness (no external bench framework), with all
//! timing routed through the `nomap-hostprof` span timer: each kernel
//! loop runs inside a uniquely-named span, and ns/iter plus allocation
//! attribution are read back from the span registry snapshot. That keeps
//! one clock for the whole observatory and exercises the span/allocator
//! path under bench-realistic load.

use nomap_hostprof::{snapshot, span, CountingAlloc, SpanStats};
use nomap_vm::{Architecture, Vm};
use nomap_workloads::{shootout, sunspider};

/// Counting allocator is opt-in per binary; installing it here gives the
/// bench real allocs/iter columns next to ns/iter.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn warm_vm(src: &str, arch: Architecture) -> Vm {
    let mut vm = Vm::new(src, arch).expect("compiles");
    vm.run_main().expect("main");
    for _ in 0..120 {
        vm.call("run", &[]).expect("warmup");
    }
    vm
}

/// Pulls the named span back out of the registry and reports per-iter
/// wall time and allocation attribution.
fn report(name: &str, iters: u64) {
    let stats: SpanStats = snapshot().spans.get(name).copied().unwrap_or_default();
    assert_eq!(stats.count, 1, "each bench span runs exactly once");
    println!(
        "{name:<28} {:>12} ns/iter {:>9} allocs/iter {:>12} alloc-B/iter ({iters} iters)",
        stats.wall_ns / iters,
        stats.allocs / iters,
        stats.alloc_bytes / iters
    );
}

fn bench_steady_state() {
    for (pick, arch) in [
        ("fibo", Architecture::Base),
        ("fibo", Architecture::NoMap),
        ("sieve", Architecture::Base),
        ("sieve", Architecture::NoMap),
    ] {
        let w = shootout().into_iter().find(|w| w.id == pick).unwrap();
        let mut vm = warm_vm(w.source, arch);
        let iters = 10;
        // `:`-separated, not `/`: a slash is the span-path separator and
        // would make the report treat the bench name as a nested path.
        let name = format!("steady_state:{pick}:{}", arch.name());
        {
            let _span = span(&name);
            for _ in 0..iters {
                vm.call("run", &[]).unwrap();
            }
        }
        report(&name, iters);
    }
}

fn bench_compilation() {
    let iters = 10;
    let name = "tier_up:S14:cold_to_ftl";
    let w = sunspider().into_iter().find(|w| w.id == "S14").unwrap();
    {
        let _span = span(name);
        for _ in 0..iters {
            let mut vm = Vm::new(w.source, Architecture::NoMap).unwrap();
            vm.run_main().unwrap();
            for _ in 0..80 {
                vm.call("run", &[]).unwrap();
            }
            std::hint::black_box(vm.stats.total_insts());
        }
    }
    report(name, iters);
}

fn main() {
    nomap_hostprof::set_enabled(true);
    bench_steady_state();
    bench_compilation();
}
