//! Host-side throughput of the simulator on representative kernels, one
//! group per paper artifact family. These do not regenerate paper numbers
//! (the `src/bin/*` binaries do); they track the reproduction's own
//! performance so simulator regressions are caught.
//!
//! Plain `std::time` harness (no external bench framework): each kernel is
//! timed over a fixed iteration count and reported as ns/iter.

use std::time::Instant;

use nomap_vm::{Architecture, Vm};
use nomap_workloads::{shootout, sunspider};

fn warm_vm(src: &str, arch: Architecture) -> Vm {
    let mut vm = Vm::new(src, arch).expect("compiles");
    vm.run_main().expect("main");
    for _ in 0..120 {
        vm.call("run", &[]).expect("warmup");
    }
    vm
}

fn report(name: &str, iters: u32, total_ns: u128) {
    println!("{name:<28} {:>12} ns/iter ({iters} iters)", total_ns / iters as u128);
}

fn bench_steady_state() {
    for (pick, arch) in [
        ("fibo", Architecture::Base),
        ("fibo", Architecture::NoMap),
        ("sieve", Architecture::Base),
        ("sieve", Architecture::NoMap),
    ] {
        let w = shootout().into_iter().find(|w| w.id == pick).unwrap();
        let mut vm = warm_vm(w.source, arch);
        let iters = 10;
        let t = Instant::now();
        for _ in 0..iters {
            vm.call("run", &[]).unwrap();
        }
        report(&format!("steady_state/{pick}/{}", arch.name()), iters, t.elapsed().as_nanos());
    }
}

fn bench_compilation() {
    let w = sunspider().into_iter().find(|w| w.id == "S14").unwrap();
    let iters = 10;
    let t = Instant::now();
    for _ in 0..iters {
        let mut vm = Vm::new(w.source, Architecture::NoMap).unwrap();
        vm.run_main().unwrap();
        for _ in 0..80 {
            vm.call("run", &[]).unwrap();
        }
        std::hint::black_box(vm.stats.total_insts());
    }
    report("tier_up/S14/cold_to_ftl", iters, t.elapsed().as_nanos());
}

fn main() {
    bench_steady_state();
    bench_compilation();
}
