//! Robustness: the front end must never panic — any byte soup either
//! parses or returns a structured error.

use proptest::prelude::*;

use nomap_frontend::parse_program;

proptest! {
    #[test]
    fn arbitrary_strings_never_panic(src in ".{0,200}") {
        let _ = parse_program(&src);
    }

    #[test]
    fn token_soup_never_panics(toks in proptest::collection::vec(
        prop_oneof![
            Just("function".to_owned()), Just("var".to_owned()), Just("if".to_owned()),
            Just("for".to_owned()), Just("while".to_owned()), Just("return".to_owned()),
            Just("(".to_owned()), Just(")".to_owned()), Just("{".to_owned()),
            Just("}".to_owned()), Just("[".to_owned()), Just("]".to_owned()),
            Just(";".to_owned()), Just(",".to_owned()), Just("+".to_owned()),
            Just("=".to_owned()), Just("==".to_owned()), Just("x".to_owned()),
            Just("42".to_owned()), Just("'s'".to_owned()), Just(".".to_owned()),
        ],
        0..40,
    )) {
        let src = toks.join(" ");
        let _ = parse_program(&src);
    }

    /// Programs the generator *knows* are valid must parse.
    #[test]
    fn generated_valid_programs_parse(
        name in "[a-z][a-z0-9]{0,6}",
        n in 0i32..1000,
        m in 1i32..50,
    ) {
        let src = format!(
            "function {name}(a) {{
                 var t = {n};
                 for (var i = 0; i < {m}; i++) {{ t = t + a; }}
                 return t;
             }}
             var out = {name}({n});"
        );
        parse_program(&src).expect("template is valid MiniJS");
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    // Moderate nesting parses; adversarial nesting is rejected with a
    // structured error instead of exhausting the host stack.
    let nest = |n: usize| {
        let mut src = String::from("var x = ");
        for _ in 0..n {
            src.push('(');
        }
        src.push('1');
        for _ in 0..n {
            src.push(')');
        }
        src.push(';');
        src
    };
    parse_program(&nest(40)).expect("balanced parens parse");
    let err = parse_program(&nest(5000)).unwrap_err();
    assert!(err.to_string().contains("nested too deeply"));
}

#[test]
fn error_messages_are_informative() {
    let err = parse_program("function f( { }").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("expected"), "got: {msg}");
}
