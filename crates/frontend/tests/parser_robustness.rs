//! Robustness: the front end must never panic — any byte soup either
//! parses or returns a structured error. Inputs come from a deterministic
//! splitmix PRNG so every run covers the same corpus.

use nomap_frontend::parse_program;

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[test]
fn arbitrary_strings_never_panic() {
    let mut rng = Rng(0xF00D);
    for _ in 0..256 {
        let len = rng.below(201) as usize;
        // Mostly printable ASCII with occasional arbitrary bytes — the
        // lexer must reject, not panic, on any of it.
        let src: String = (0..len)
            .map(|_| {
                let r = rng.next_u64();
                if r.is_multiple_of(8) {
                    char::from_u32((r >> 8) as u32 % 0xD800).unwrap_or('\u{FFFD}')
                } else {
                    (0x20 + (r >> 8) % 0x5F) as u8 as char
                }
            })
            .collect();
        let _ = parse_program(&src);
    }
}

#[test]
fn token_soup_never_panics() {
    const TOKS: [&str; 21] = [
        "function", "var", "if", "for", "while", "return", "(", ")", "{", "}", "[", "]", ";", ",",
        "+", "=", "==", "x", "42", "'s'", ".",
    ];
    let mut rng = Rng(0x50_FA);
    for _ in 0..256 {
        let n = rng.below(40) as usize;
        let toks: Vec<&str> = (0..n).map(|_| TOKS[rng.below(21) as usize]).collect();
        let src = toks.join(" ");
        let _ = parse_program(&src);
    }
}

/// Programs the generator *knows* are valid must parse.
#[test]
fn generated_valid_programs_parse() {
    let mut rng = Rng(0x7A11);
    for _ in 0..64 {
        let name: String = std::iter::once((b'a' + rng.below(26) as u8) as char)
            .chain((0..rng.below(7)).map(|_| {
                let r = rng.below(36) as u8;
                if r < 26 {
                    (b'a' + r) as char
                } else {
                    (b'0' + r - 26) as char
                }
            }))
            .collect();
        let n = rng.below(1000);
        let m = 1 + rng.below(49);
        let src = format!(
            "function {name}(a) {{
                 var t = {n};
                 for (var i = 0; i < {m}; i++) {{ t = t + a; }}
                 return t;
             }}
             var out = {name}({n});"
        );
        parse_program(&src).expect("template is valid MiniJS");
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    // Moderate nesting parses; adversarial nesting is rejected with a
    // structured error instead of exhausting the host stack.
    let nest = |n: usize| {
        let mut src = String::from("var x = ");
        for _ in 0..n {
            src.push('(');
        }
        src.push('1');
        for _ in 0..n {
            src.push(')');
        }
        src.push(';');
        src
    };
    parse_program(&nest(40)).expect("balanced parens parse");
    let err = parse_program(&nest(5000)).unwrap_err();
    assert!(err.to_string().contains("nested too deeply"));
}

#[test]
fn error_messages_are_informative() {
    let err = parse_program("function f( { }").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("expected"), "got: {msg}");
}
