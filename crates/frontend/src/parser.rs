//! Recursive-descent parser for MiniJS.

use std::error::Error;
use std::fmt;

use crate::ast::{
    AssignTarget, BinOp, Expr, ExprKind, Function, LogOp, Program, Stmt, StmtKind, UnOp,
};
use crate::lexer::{LexError, Lexer};
use crate::token::{Keyword, Span, Token, TokenKind};

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    msg: String,
    /// Location of the offending token.
    pub span: Span,
}

impl ParseError {
    fn new(msg: impl Into<String>, span: Span) -> Self {
        ParseError { msg: msg.into(), span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.msg)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { msg: e.to_string(), span: e.span }
    }
}

/// Parses a full MiniJS program.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Example
///
/// ```
/// let p = nomap_frontend::parse_program("var x = 1 + 2;")?;
/// assert_eq!(p.top_level.len(), 1);
/// # Ok::<(), nomap_frontend::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser::new(tokens).program()
}

/// Recursive-descent parser over a token stream.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    /// Creates a parser over tokens produced by [`Lexer::tokenize`].
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, depth: 0 }
    }

    /// Maximum expression nesting depth (guards the recursive descent
    /// against stack exhaustion on adversarial input).
    const MAX_DEPTH: usize = 48;

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek_kind() == kind {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                format!("expected {}, found {}", kind, self.peek_kind()),
                self.peek().span,
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(ParseError::new(
                format!("expected identifier, found {other}"),
                self.peek().span,
            )),
        }
    }

    /// Parses the whole token stream as a program.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on the first syntax error.
    pub fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        while self.peek_kind() != &TokenKind::Eof {
            if self.peek_kind() == &TokenKind::Keyword(Keyword::Function) {
                prog.functions.push(self.function()?);
            } else {
                prog.top_level.push(self.statement()?);
            }
        }
        Ok(prog)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let start = self.expect(&TokenKind::Keyword(Keyword::Function))?.span;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek_kind() != &TokenKind::RParen {
            loop {
                let (p, _) = self.expect_ident()?;
                params.push(p);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while self.peek_kind() != &TokenKind::RBrace {
            body.push(self.statement()?);
        }
        let end = self.expect(&TokenKind::RBrace)?.span;
        Ok(Function { name, params, body, span: start.merge(end) })
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek().span;
        match self.peek_kind() {
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::new(StmtKind::Empty, span))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while self.peek_kind() != &TokenKind::RBrace {
                    stmts.push(self.statement()?);
                }
                let end = self.expect(&TokenKind::RBrace)?.span;
                Ok(Stmt::new(StmtKind::Block(stmts), span.merge(end)))
            }
            TokenKind::Keyword(Keyword::Var) | TokenKind::Keyword(Keyword::Let) => {
                let s = self.var_decl()?;
                self.eat(&TokenKind::Semi);
                Ok(s)
            }
            TokenKind::Keyword(Keyword::If) => self.if_stmt(),
            TokenKind::Keyword(Keyword::While) => self.while_stmt(),
            TokenKind::Keyword(Keyword::Do) => self.do_while_stmt(),
            TokenKind::Keyword(Keyword::For) => self.for_stmt(),
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.peek_kind() == &TokenKind::Semi
                    || self.peek_kind() == &TokenKind::RBrace
                {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat(&TokenKind::Semi);
                Ok(Stmt::new(StmtKind::Return(value), span))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.eat(&TokenKind::Semi);
                Ok(Stmt::new(StmtKind::Break, span))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.eat(&TokenKind::Semi);
                Ok(Stmt::new(StmtKind::Continue, span))
            }
            _ => {
                let e = self.expression()?;
                self.eat(&TokenKind::Semi);
                Ok(Stmt::new(StmtKind::Expr(e), span))
            }
        }
    }

    fn var_decl(&mut self) -> Result<Stmt, ParseError> {
        let span = self.bump().span; // var/let
        let mut decls = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            let init = if self.eat(&TokenKind::Assign) { Some(self.assignment()?) } else { None };
            decls.push((name, init));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Stmt::new(StmtKind::VarDecl(decls), span))
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.bump().span;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(&TokenKind::RParen)?;
        let then = Box::new(self.statement()?);
        let els = if self.eat(&TokenKind::Keyword(Keyword::Else)) {
            Some(Box::new(self.statement()?))
        } else {
            None
        };
        Ok(Stmt::new(StmtKind::If(cond, then, els), span))
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.bump().span;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.statement()?);
        Ok(Stmt::new(StmtKind::While(cond, body), span))
    }

    fn do_while_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.bump().span;
        let body = Box::new(self.statement()?);
        self.expect(&TokenKind::Keyword(Keyword::While))?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(&TokenKind::RParen)?;
        self.eat(&TokenKind::Semi);
        Ok(Stmt::new(StmtKind::DoWhile(body, cond), span))
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.bump().span;
        self.expect(&TokenKind::LParen)?;
        let init = if self.peek_kind() == &TokenKind::Semi {
            self.bump();
            None
        } else if matches!(
            self.peek_kind(),
            TokenKind::Keyword(Keyword::Var) | TokenKind::Keyword(Keyword::Let)
        ) {
            let d = self.var_decl()?;
            self.expect(&TokenKind::Semi)?;
            Some(Box::new(d))
        } else {
            let e = self.expression()?;
            let espan = e.span;
            self.expect(&TokenKind::Semi)?;
            Some(Box::new(Stmt::new(StmtKind::Expr(e), espan)))
        };
        let cond =
            if self.peek_kind() == &TokenKind::Semi { None } else { Some(self.expression()?) };
        self.expect(&TokenKind::Semi)?;
        let step =
            if self.peek_kind() == &TokenKind::RParen { None } else { Some(self.expression()?) };
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.statement()?);
        Ok(Stmt::new(StmtKind::For { init, cond, step, body }, span))
    }

    /// Parses a single expression (entry point for tests and tools).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on invalid expression syntax.
    pub fn expression(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn as_assign_target(e: Expr) -> Result<AssignTarget, ParseError> {
        let span = e.span;
        match e.kind {
            ExprKind::Ident(n) => Ok(AssignTarget::Ident(n)),
            ExprKind::Member(obj, name) => Ok(AssignTarget::Member(obj, name)),
            ExprKind::Index(arr, idx) => Ok(AssignTarget::Index(arr, idx)),
            _ => Err(ParseError::new("invalid assignment target", span)),
        }
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > Self::MAX_DEPTH {
            self.depth -= 1;
            return Err(ParseError::new("expression is nested too deeply", self.peek().span));
        }
        let r = self.assignment_inner();
        self.depth -= 1;
        r
    }

    fn assignment_inner(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        let op = match self.peek_kind() {
            TokenKind::Assign => None,
            TokenKind::PlusAssign => Some(BinOp::Add),
            TokenKind::MinusAssign => Some(BinOp::Sub),
            TokenKind::StarAssign => Some(BinOp::Mul),
            TokenKind::SlashAssign => Some(BinOp::Div),
            TokenKind::PercentAssign => Some(BinOp::Mod),
            TokenKind::AmpAssign => Some(BinOp::BitAnd),
            TokenKind::PipeAssign => Some(BinOp::BitOr),
            TokenKind::CaretAssign => Some(BinOp::BitXor),
            TokenKind::ShlAssign => Some(BinOp::Shl),
            TokenKind::ShrAssign => Some(BinOp::Shr),
            TokenKind::UShrAssign => Some(BinOp::UShr),
            _ => return Ok(lhs),
        };
        let span = lhs.span;
        self.bump();
        let value = self.assignment()?;
        let target = Self::as_assign_target(lhs)?;
        Ok(Expr::new(ExprKind::Assign(target, op, Box::new(value)), span))
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logical_or()?;
        if self.eat(&TokenKind::Question) {
            let span = cond.span;
            let a = self.assignment()?;
            self.expect(&TokenKind::Colon)?;
            let b = self.assignment()?;
            Ok(Expr::new(ExprKind::Ternary(Box::new(cond), Box::new(a), Box::new(b)), span))
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.logical_and()?;
        while self.eat(&TokenKind::PipePipe) {
            let rhs = self.logical_and()?;
            let span = lhs.span;
            lhs = Expr::new(ExprKind::Logical(LogOp::Or, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_or()?;
        while self.eat(&TokenKind::AmpAmp) {
            let rhs = self.bit_or()?;
            let span = lhs.span;
            lhs = Expr::new(ExprKind::Logical(LogOp::And, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn binary_level<F>(&mut self, next: F, table: &[(TokenKind, BinOp)]) -> Result<Expr, ParseError>
    where
        F: Fn(&mut Self) -> Result<Expr, ParseError>,
    {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in table {
                if self.peek_kind() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span;
                    lhs = Expr::new(ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)), span);
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::bit_xor, &[(TokenKind::Pipe, BinOp::BitOr)])
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::bit_and, &[(TokenKind::Caret, BinOp::BitXor)])
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::equality, &[(TokenKind::Amp, BinOp::BitAnd)])
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::relational,
            &[
                (TokenKind::EqEqEq, BinOp::StrictEq),
                (TokenKind::NotEqEq, BinOp::StrictNotEq),
                (TokenKind::EqEq, BinOp::Eq),
                (TokenKind::NotEq, BinOp::NotEq),
            ],
        )
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::shift,
            &[
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Ge, BinOp::Ge),
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Gt, BinOp::Gt),
            ],
        )
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::additive,
            &[
                (TokenKind::Shl, BinOp::Shl),
                (TokenKind::UShr, BinOp::UShr),
                (TokenKind::Shr, BinOp::Shr),
            ],
        )
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::multiplicative,
            &[(TokenKind::Plus, BinOp::Add), (TokenKind::Minus, BinOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::unary,
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Mod),
            ],
        )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Plus => Some(UnOp::Plus),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Keyword(Keyword::Typeof) => Some(UnOp::Typeof),
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let is_incr = self.peek_kind() == &TokenKind::PlusPlus;
                self.bump();
                let operand = self.unary()?;
                let target = Self::as_assign_target(operand)?;
                return Ok(Expr::new(ExprKind::IncrDecr { target, is_incr, prefix: true }, span));
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            // Constant-fold negative number literals so `-1` is a literal.
            if op == UnOp::Neg {
                if let ExprKind::Number(n) = operand.kind {
                    return Ok(Expr::new(ExprKind::Number(-n), span));
                }
            }
            return Ok(Expr::new(ExprKind::Unary(op, Box::new(operand)), span));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.call_member()?;
        loop {
            match self.peek_kind() {
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let is_incr = self.peek_kind() == &TokenKind::PlusPlus;
                    let span = self.bump().span;
                    let target = Self::as_assign_target(e)?;
                    e = Expr::new(ExprKind::IncrDecr { target, is_incr, prefix: false }, span);
                }
                _ => return Ok(e),
            }
        }
    }

    fn call_member(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek_kind() {
                TokenKind::Dot => {
                    self.bump();
                    let (name, nspan) = self.expect_ident()?;
                    if self.peek_kind() == &TokenKind::LParen {
                        let args = self.arguments()?;
                        let span = e.span.merge(nspan);
                        e = Expr::new(ExprKind::MethodCall(Box::new(e), name, args), span);
                    } else {
                        let span = e.span.merge(nspan);
                        e = Expr::new(ExprKind::Member(Box::new(e), name), span);
                    }
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expression()?;
                    let end = self.expect(&TokenKind::RBracket)?.span;
                    let span = e.span.merge(end);
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), span);
                }
                TokenKind::LParen => {
                    let span = e.span;
                    match e.kind {
                        ExprKind::Ident(name) => {
                            let args = self.arguments()?;
                            e = Expr::new(ExprKind::Call(name, args), span);
                        }
                        _ => {
                            return Err(ParseError::new(
                                "only direct calls to named functions are supported",
                                span,
                            ));
                        }
                    }
                }
                _ => return Ok(e),
            }
        }
    }

    fn arguments(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek_kind() != &TokenKind::RParen {
            loop {
                args.push(self.assignment()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Number(n), span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), span))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), span))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), span))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.bump();
                Ok(Expr::new(ExprKind::Null, span))
            }
            TokenKind::Keyword(Keyword::Undefined) => {
                self.bump();
                Ok(Expr::new(ExprKind::Undefined, span))
            }
            TokenKind::Keyword(Keyword::New) => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                if name != "Array" {
                    return Err(ParseError::new(
                        format!("`new {name}` is not supported; only `new Array(n)`"),
                        span,
                    ));
                }
                let mut args = self.arguments()?;
                let size = if args.is_empty() {
                    Expr::new(ExprKind::Number(0.0), span)
                } else if args.len() == 1 {
                    args.pop().unwrap()
                } else {
                    return Err(ParseError::new("`new Array` takes at most one size", span));
                };
                Ok(Expr::new(ExprKind::NewArray(Box::new(size)), span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::new(ExprKind::Ident(name), span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                if self.peek_kind() != &TokenKind::RBracket {
                    loop {
                        elems.push(self.assignment()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        if self.peek_kind() == &TokenKind::RBracket {
                            break; // trailing comma
                        }
                    }
                }
                let end = self.expect(&TokenKind::RBracket)?.span;
                Ok(Expr::new(ExprKind::Array(elems), span.merge(end)))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                if self.peek_kind() != &TokenKind::RBrace {
                    loop {
                        let key = match self.peek_kind().clone() {
                            TokenKind::Ident(k) => {
                                self.bump();
                                k
                            }
                            TokenKind::Str(k) => {
                                self.bump();
                                k
                            }
                            other => {
                                return Err(ParseError::new(
                                    format!("expected property name, found {other}"),
                                    self.peek().span,
                                ));
                            }
                        };
                        self.expect(&TokenKind::Colon)?;
                        let value = self.assignment()?;
                        fields.push((key, value));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        if self.peek_kind() == &TokenKind::RBrace {
                            break; // trailing comma
                        }
                    }
                }
                let end = self.expect(&TokenKind::RBrace)?.span;
                Ok(Expr::new(ExprKind::Object(fields), span.merge(end)))
            }
            other => Err(ParseError::new(format!("unexpected token {other} in expression"), span)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        let tokens = Lexer::new(src).tokenize().unwrap();
        Parser::new(tokens).expression().unwrap()
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = expr("1 + 2 * 3");
        match e.kind {
            ExprKind::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_shift_vs_relational() {
        // `a < b << c` parses as `a < (b << c)`.
        let e = expr("a < b << c");
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Lt, _, _)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = expr("a = b = 1");
        match e.kind {
            ExprKind::Assign(AssignTarget::Ident(a), None, rhs) => {
                assert_eq!(a, "a");
                assert!(matches!(rhs.kind, ExprKind::Assign(_, None, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn compound_assignment_to_member() {
        let e = expr("obj.sum += v");
        assert!(matches!(
            e.kind,
            ExprKind::Assign(AssignTarget::Member(_, _), Some(BinOp::Add), _)
        ));
    }

    #[test]
    fn postfix_and_prefix_increment() {
        assert!(matches!(
            expr("i++").kind,
            ExprKind::IncrDecr { is_incr: true, prefix: false, .. }
        ));
        assert!(matches!(
            expr("--i").kind,
            ExprKind::IncrDecr { is_incr: false, prefix: true, .. }
        ));
    }

    #[test]
    fn method_calls_and_members() {
        let e = expr("Math.sqrt(x)");
        match e.kind {
            ExprKind::MethodCall(recv, name, args) => {
                assert!(matches!(recv.kind, ExprKind::Ident(ref n) if n == "Math"));
                assert_eq!(name, "sqrt");
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(expr("a.length").kind, ExprKind::Member(_, _)));
    }

    #[test]
    fn array_and_object_literals() {
        assert!(matches!(expr("[1, 2, 3]").kind, ExprKind::Array(ref v) if v.len() == 3));
        assert!(matches!(
            expr("{a: 1, b: 2}").kind,
            ExprKind::Object(ref v) if v.len() == 2
        ));
        assert!(matches!(expr("[1, 2,]").kind, ExprKind::Array(ref v) if v.len() == 2));
    }

    #[test]
    fn new_array() {
        assert!(matches!(expr("new Array(10)").kind, ExprKind::NewArray(_)));
    }

    #[test]
    fn ternary_and_logical() {
        assert!(matches!(expr("a ? b : c").kind, ExprKind::Ternary(_, _, _)));
        assert!(matches!(expr("a && b || c").kind, ExprKind::Logical(LogOp::Or, _, _)));
    }

    #[test]
    fn negative_literal_folds() {
        assert!(matches!(expr("-5").kind, ExprKind::Number(n) if n == -5.0));
    }

    #[test]
    fn parses_full_program() {
        let p = parse_program(
            "function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             var r = fib(10);",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params, vec!["n"]);
        assert_eq!(p.top_level.len(), 1);
    }

    #[test]
    fn parses_for_loop_forms() {
        let p = parse_program("for (var i = 0; i < 10; i++) { x += i; }").unwrap();
        assert!(matches!(p.top_level[0].kind, StmtKind::For { .. }));
        let p = parse_program("for (;;) { break; }").unwrap();
        match &p.top_level[0].kind {
            StmtKind::For { init, cond, step, .. } => {
                assert!(init.is_none() && cond.is_none() && step.is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_do_while() {
        let p = parse_program("do { x--; } while (x > 0);").unwrap();
        assert!(matches!(p.top_level[0].kind, StmtKind::DoWhile(_, _)));
    }

    #[test]
    fn rejects_call_of_expression() {
        assert!(parse_program("(a + b)(1);").is_err());
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(parse_program("1 = 2;").is_err());
    }

    #[test]
    fn error_carries_line() {
        let err = parse_program("var ok = 1;\nvar x = ;").unwrap_err();
        assert_eq!(err.span.line, 2);
    }
}
