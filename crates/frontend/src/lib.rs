//! Front end for **MiniJS**, the JavaScript subset used by the NoMap
//! reproduction.
//!
//! MiniJS keeps the parts of JavaScript that matter for the paper's
//! experiments: dynamically-typed values (numbers that may be int32 or
//! double, strings, booleans, `null`/`undefined`), objects with
//! dynamically-added properties, automatically-elongating arrays with holes,
//! top-level functions, and the usual expression/statement forms. It omits
//! closures, prototypes, exceptions and `eval`, none of which the paper's
//! evaluation depends on.
//!
//! # Example
//!
//! ```
//! use nomap_frontend::parse_program;
//!
//! let program = parse_program(
//!     "function sum(a) {
//!          var s = 0;
//!          for (var i = 0; i < a.length; i++) { s += a[i]; }
//!          return s;
//!      }",
//! )?;
//! assert_eq!(program.functions.len(), 1);
//! assert_eq!(program.functions[0].name, "sum");
//! # Ok::<(), nomap_frontend::ParseError>(())
//! ```

mod ast;
mod lexer;
mod parser;
mod token;

pub use ast::{
    AssignTarget, BinOp, Expr, ExprKind, Function, LogOp, Program, Stmt, StmtKind, UnOp,
};
pub use lexer::{LexError, Lexer};
pub use parser::{parse_program, ParseError, Parser};
pub use token::{Keyword, Span, Token, TokenKind};
