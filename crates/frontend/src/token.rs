//! Tokens produced by the MiniJS lexer.

use std::fmt;

/// A half-open byte range into the original source, with a 1-based line
/// number for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Span {
    /// Creates a span covering `start..end` on `line`.
    pub fn new(start: u32, end: u32, line: u32) -> Self {
        Span { start, end, line }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Reserved words recognized by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Function,
    Var,
    Let,
    If,
    Else,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    True,
    False,
    Null,
    Undefined,
    Typeof,
    New,
}

impl Keyword {
    /// Looks up an identifier; returns `None` if it is not reserved.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "function" => Keyword::Function,
            "var" => Keyword::Var,
            "let" => Keyword::Let,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "null" => Keyword::Null,
            "undefined" => Keyword::Undefined,
            "typeof" => Keyword::Typeof,
            "new" => Keyword::New,
            _ => return None,
        })
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A numeric literal; MiniJS numbers are IEEE doubles at the source level.
    Number(f64),
    /// A string literal with escapes already processed.
    Str(String),
    /// An identifier that is not a keyword.
    Ident(String),
    /// A reserved word.
    Keyword(Keyword),

    // Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,
    Question,

    Assign,        // =
    Plus,          // +
    Minus,         // -
    Star,          // *
    Slash,         // /
    Percent,       // %
    PlusAssign,    // +=
    MinusAssign,   // -=
    StarAssign,    // *=
    SlashAssign,   // /=
    PercentAssign, // %=
    AmpAssign,     // &=
    PipeAssign,    // |=
    CaretAssign,   // ^=
    ShlAssign,     // <<=
    ShrAssign,     // >>=
    UShrAssign,    // >>>=
    PlusPlus,      // ++
    MinusMinus,    // --

    Amp,      // &
    Pipe,     // |
    Caret,    // ^
    Tilde,    // ~
    AmpAmp,   // &&
    PipePipe, // ||
    Bang,     // !

    Lt,      // <
    Gt,      // >
    Le,      // <=
    Ge,      // >=
    EqEq,    // ==
    NotEq,   // !=
    EqEqEq,  // ===
    NotEqEq, // !==
    Shl,     // <<
    Shr,     // >>
    UShr,    // >>>

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k:?}`"),
            TokenKind::Eof => write!(f, "end of input"),
            other => write!(f, "`{other:?}`"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_roundtrip() {
        assert_eq!(Keyword::from_ident("function"), Some(Keyword::Function));
        assert_eq!(Keyword::from_ident("undefined"), Some(Keyword::Undefined));
        assert_eq!(Keyword::from_ident("banana"), None);
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(2, 5, 1);
        let b = Span::new(7, 9, 2);
        let m = a.merge(b);
        assert_eq!(m, Span::new(2, 9, 1));
    }
}
