//! Hand-written lexer for MiniJS.

use std::error::Error;
use std::fmt;

use crate::token::{Keyword, Span, Token, TokenKind};

/// An error produced while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    msg: String,
    /// Location of the offending character.
    pub span: Span,
}

impl LexError {
    fn new(msg: impl Into<String>, span: Span) -> Self {
        LexError { msg: msg.into(), span }
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.msg)
    }
}

impl Error for LexError {}

/// Streaming lexer over a source string.
///
/// Usually driven indirectly through [`crate::parse_program`]; exposed for
/// tools that want raw tokens (e.g. syntax highlighting in examples).
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
    line: u32,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    /// Lexes the entire input into a token vector terminated by
    /// [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] on malformed numbers, unterminated strings or
    /// unexpected characters.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.span_here(1);
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(LexError::new("unterminated block comment", start));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn span_here(&self, len: usize) -> Span {
        Span::new(self.pos as u32, (self.pos + len) as u32, self.line)
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let start = self.pos;
        let line = self.line;
        if self.pos >= self.src.len() {
            return Ok(Token::new(TokenKind::Eof, self.span_here(0)));
        }
        let c = self.peek();
        let kind = match c {
            b'0'..=b'9' => return self.lex_number(),
            b'.' if self.peek2().is_ascii_digit() => return self.lex_number(),
            b'"' | b'\'' => return self.lex_string(),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => return Ok(self.lex_ident()),
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'.' => {
                self.bump();
                TokenKind::Dot
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b'?' => {
                self.bump();
                TokenKind::Question
            }
            b'~' => {
                self.bump();
                TokenKind::Tilde
            }
            b'+' => {
                self.bump();
                match self.peek() {
                    b'+' => {
                        self.bump();
                        TokenKind::PlusPlus
                    }
                    b'=' => {
                        self.bump();
                        TokenKind::PlusAssign
                    }
                    _ => TokenKind::Plus,
                }
            }
            b'-' => {
                self.bump();
                match self.peek() {
                    b'-' => {
                        self.bump();
                        TokenKind::MinusMinus
                    }
                    b'=' => {
                        self.bump();
                        TokenKind::MinusAssign
                    }
                    _ => TokenKind::Minus,
                }
            }
            b'*' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::StarAssign
                } else {
                    TokenKind::Star
                }
            }
            b'/' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::SlashAssign
                } else {
                    TokenKind::Slash
                }
            }
            b'%' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::PercentAssign
                } else {
                    TokenKind::Percent
                }
            }
            b'&' => {
                self.bump();
                match self.peek() {
                    b'&' => {
                        self.bump();
                        TokenKind::AmpAmp
                    }
                    b'=' => {
                        self.bump();
                        TokenKind::AmpAssign
                    }
                    _ => TokenKind::Amp,
                }
            }
            b'|' => {
                self.bump();
                match self.peek() {
                    b'|' => {
                        self.bump();
                        TokenKind::PipePipe
                    }
                    b'=' => {
                        self.bump();
                        TokenKind::PipeAssign
                    }
                    _ => TokenKind::Pipe,
                }
            }
            b'^' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::CaretAssign
                } else {
                    TokenKind::Caret
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::NotEqEq
                    } else {
                        TokenKind::NotEq
                    }
                } else {
                    TokenKind::Bang
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::EqEqEq
                    } else {
                        TokenKind::EqEq
                    }
                } else {
                    TokenKind::Assign
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    b'=' => {
                        self.bump();
                        TokenKind::Le
                    }
                    b'<' => {
                        self.bump();
                        if self.peek() == b'=' {
                            self.bump();
                            TokenKind::ShlAssign
                        } else {
                            TokenKind::Shl
                        }
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                match self.peek() {
                    b'=' => {
                        self.bump();
                        TokenKind::Ge
                    }
                    b'>' => {
                        self.bump();
                        match self.peek() {
                            b'>' => {
                                self.bump();
                                if self.peek() == b'=' {
                                    self.bump();
                                    TokenKind::UShrAssign
                                } else {
                                    TokenKind::UShr
                                }
                            }
                            b'=' => {
                                self.bump();
                                TokenKind::ShrAssign
                            }
                            _ => TokenKind::Shr,
                        }
                    }
                    _ => TokenKind::Gt,
                }
            }
            other => {
                return Err(LexError::new(
                    format!("unexpected character {:?}", other as char),
                    self.span_here(1),
                ));
            }
        };
        Ok(Token::new(kind, Span::new(start as u32, self.pos as u32, line)))
    }

    fn lex_number(&mut self) -> Result<Token, LexError> {
        let start = self.pos;
        let line = self.line;
        // Hex literal.
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).unwrap();
            let span = Span::new(start as u32, self.pos as u32, line);
            let v = u64::from_str_radix(text, 16)
                .map_err(|_| LexError::new("invalid hex literal", span))?;
            return Ok(Token::new(TokenKind::Number(v as f64), span));
        }
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        } else if self.peek() == b'.'
            && !self.peek2().is_ascii_alphanumeric()
            && self.peek2() != b'_'
        {
            // Trailing dot as in `1.` — consume it as part of the number
            // unless it starts a property access like `0..toString` (not
            // supported anyway).
            self.bump();
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            // Only a valid exponent if followed by digits or sign+digits.
            let save = (self.pos, self.line);
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                (self.pos, self.line) = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let span = Span::new(start as u32, self.pos as u32, line);
        let value: f64 = text
            .parse()
            .map_err(|_| LexError::new(format!("invalid number literal `{text}`"), span))?;
        Ok(Token::new(TokenKind::Number(value), span))
    }

    fn lex_string(&mut self) -> Result<Token, LexError> {
        let start = self.pos;
        let line = self.line;
        let quote = self.bump();
        let mut s = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(LexError::new(
                    "unterminated string literal",
                    Span::new(start as u32, self.pos as u32, line),
                ));
            }
            let c = self.bump();
            if c == quote {
                break;
            }
            if c == b'\\' {
                let esc = self.bump();
                match esc {
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    b'0' => s.push('\0'),
                    b'\\' => s.push('\\'),
                    b'\'' => s.push('\''),
                    b'"' => s.push('"'),
                    b'u' => {
                        let mut v: u32 = 0;
                        for _ in 0..4 {
                            let d = self.bump();
                            let d = (d as char).to_digit(16).ok_or_else(|| {
                                LexError::new(
                                    "invalid \\u escape",
                                    Span::new(start as u32, self.pos as u32, line),
                                )
                            })?;
                            v = v * 16 + d;
                        }
                        s.push(char::from_u32(v).unwrap_or('\u{FFFD}'));
                    }
                    other => s.push(other as char),
                }
            } else {
                s.push(c as char);
            }
        }
        Ok(Token::new(TokenKind::Str(s), Span::new(start as u32, self.pos as u32, line)))
    }

    fn lex_ident(&mut self) -> Token {
        let start = self.pos;
        let line = self.line;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'$') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let span = Span::new(start as u32, self.pos as u32, line);
        match Keyword::from_ident(text) {
            Some(kw) => Token::new(TokenKind::Keyword(kw), span),
            None => Token::new(TokenKind::Ident(text.to_owned()), span),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("1 2.5 0x10 1e3 1.5e-2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.5),
                TokenKind::Number(16.0),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.015),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#" "a\nb" 'c' "A" "#),
            vec![
                TokenKind::Str("a\nb".into()),
                TokenKind::Str("c".into()),
                TokenKind::Str("A".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_match() {
        assert_eq!(
            kinds("=== == = >>> >> > >>>= <<= ++ += !== !="),
            vec![
                TokenKind::EqEqEq,
                TokenKind::EqEq,
                TokenKind::Assign,
                TokenKind::UShr,
                TokenKind::Shr,
                TokenKind::Gt,
                TokenKind::UShrAssign,
                TokenKind::ShlAssign,
                TokenKind::PlusPlus,
                TokenKind::PlusAssign,
                TokenKind::NotEqEq,
                TokenKind::NotEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = Lexer::new("a // comment\n/* block\nmore */ b").tokenize().unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("a".into()));
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].kind, TokenKind::Ident("b".into()));
        assert_eq!(toks[1].span.line, 3);
    }

    #[test]
    fn keywords_are_recognized() {
        assert_eq!(
            kinds("for typeof undefined"),
            vec![
                TokenKind::Keyword(Keyword::For),
                TokenKind::Keyword(Keyword::Typeof),
                TokenKind::Keyword(Keyword::Undefined),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(Lexer::new("@").tokenize().is_err());
    }

    #[test]
    fn member_dot_after_number_parenthesized() {
        // `x.length` style dots still lex as Dot tokens.
        assert_eq!(
            kinds("a.length"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("length".into()),
                TokenKind::Eof
            ]
        );
    }
}
