//! Abstract syntax tree for MiniJS.

use crate::token::Span;

/// Binary arithmetic, bitwise and comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    NotEq,
    StrictEq,
    StrictNotEq,
}

impl BinOp {
    /// True for `< <= > >= == != === !==`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::NotEq
                | BinOp::StrictEq
                | BinOp::StrictNotEq
        )
    }
}

/// Short-circuiting logical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogOp {
    And,
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Plus,
    Not,
    BitNot,
    Typeof,
}

/// The place an assignment writes to.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignTarget {
    /// A local, parameter or global variable.
    Ident(String),
    /// `obj.prop`.
    Member(Box<Expr>, String),
    /// `arr[idx]`.
    Index(Box<Expr>, Box<Expr>),
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression itself.
    pub kind: ExprKind,
    /// Source location, for diagnostics.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Numeric literal (source-level numbers are doubles).
    Number(f64),
    /// String literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
    /// Variable reference.
    Ident(String),
    /// `[e1, e2, ...]`.
    Array(Vec<Expr>),
    /// `{a: e1, b: e2}`.
    Object(Vec<(String, Expr)>),
    /// `new Array(n)` — pre-sized array allocation.
    NewArray(Box<Expr>),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&` / `||`.
    Logical(LogOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Assignment, optionally compound (`target op= value`).
    Assign(AssignTarget, Option<BinOp>, Box<Expr>),
    /// Prefix or postfix `++`/`--`; `is_incr` selects `++`, `prefix` selects
    /// the prefix form (which yields the new value).
    IncrDecr {
        /// Place updated.
        target: AssignTarget,
        /// `++` if true, `--` if false.
        is_incr: bool,
        /// Prefix form yields the new value; postfix yields the old.
        prefix: bool,
    },
    /// Call of a named (global) function: `f(a, b)`.
    Call(String, Vec<Expr>),
    /// Method call `recv.name(args)` — resolved to intrinsics (e.g.
    /// `Math.sqrt`, `arr.push`) by the bytecode compiler.
    MethodCall(Box<Expr>, String, Vec<Expr>),
    /// Property read `obj.prop`.
    Member(Box<Expr>, String),
    /// Indexed read `arr[idx]`.
    Index(Box<Expr>, Box<Expr>),
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement itself.
    pub kind: StmtKind,
    /// Source location, for diagnostics.
    pub span: Span,
}

impl Stmt {
    /// Creates a statement node.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression evaluated for effect.
    Expr(Expr),
    /// `var`/`let` declarations (MiniJS treats both as function-scoped).
    VarDecl(Vec<(String, Option<Expr>)>),
    /// `if (c) t else e`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (c) body`.
    While(Expr, Box<Stmt>),
    /// `do body while (c);`.
    DoWhile(Box<Stmt>, Expr),
    /// `for (init; cond; step) body`.
    For {
        /// Declaration or expression statement run once.
        init: Option<Box<Stmt>>,
        /// Loop condition; `None` means `true`.
        cond: Option<Expr>,
        /// Step expression run after each iteration.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return e;` / `return;`.
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// `;`.
    Empty,
}

/// A top-level function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (top-level, globally visible).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the declaration.
    pub span: Span,
}

/// A parsed MiniJS program: top-level functions plus top-level statements
/// that form the implicit "main" script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Declared functions, in source order.
    pub functions: Vec<Function>,
    /// Top-level statements, in source order.
    pub top_level: Vec<Stmt>,
}
