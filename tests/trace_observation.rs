//! Tracing is observation-only: enabling it must not change execution
//! statistics or program results, and the emitted stream must cover the
//! full lifecycle (tier-ups, transaction begin/commit/abort, ladder steps)
//! with JSONL output that parses line by line.

use nomap_trace::{JsonlSink, Metrics, TraceEvent, SCHEMA_VERSION};
use nomap_vm::{Architecture, Vm};

/// A workload big enough to tier to FTL, commit transactions, and overflow
/// the 256 KB ROT write budget (forcing capacity aborts and §V-C ladder
/// steps).
const LADDER_SRC: &str = "
    var N = 40000;
    var big = new Array(N);
    function smash(seed) {
        var acc = 0;
        for (var i = 0; i < N; i++) {
            big[i] = (i ^ seed) & 1023;
            acc = (acc + big[i]) & 1048575;
        }
        return acc;
    }
    function run() { return smash(99); }
";

fn run_workload(vm: &mut Vm) -> String {
    vm.run_main().unwrap();
    let mut last = String::new();
    for _ in 0..60 {
        last = format!("{:?}", vm.call("run", &[]).unwrap());
    }
    last
}

#[test]
fn tracing_does_not_change_stats_or_results() {
    let mut plain = Vm::new(LADDER_SRC, Architecture::NoMap).unwrap();
    let r1 = run_workload(&mut plain);

    let mut traced = Vm::new(LADDER_SRC, Architecture::NoMap).unwrap();
    traced.enable_tracing(4096);
    traced.add_trace_sink(Box::new(JsonlSink::new(Vec::new())));
    let r2 = run_workload(&mut traced);

    assert_eq!(r1, r2, "tracing changed the program result");
    assert_eq!(plain.stats, traced.stats, "tracing changed ExecStats");
    assert!(traced.trace_emitted() > 0, "enabled tracer emitted nothing");
}

#[test]
fn lifecycle_events_cover_the_transactional_workload() {
    let mut vm = Vm::new(LADDER_SRC, Architecture::NoMap).unwrap();
    vm.enable_tracing(65536);
    run_workload(&mut vm);

    let events = vm.trace();
    assert!(!events.is_empty());

    let mut ftl_tier_ups = 0;
    let mut commits = 0;
    let mut aborts_with_footprint = 0;
    let mut ladder_steps = 0;
    let mut last_seq = None;
    for rec in &events {
        if let Some(prev) = last_seq {
            assert!(rec.seq > prev, "events out of order");
        }
        last_seq = Some(rec.seq);
        match &rec.event {
            TraceEvent::TierUp { tier, .. } if *tier == nomap_machine::Tier::Ftl => {
                ftl_tier_ups += 1;
            }
            TraceEvent::TxCommit { instructions, .. } => {
                assert!(*instructions > 0, "committed transaction ran no instructions");
                commits += 1;
            }
            TraceEvent::TxAbort { footprint_bytes, .. } if *footprint_bytes > 0 => {
                aborts_with_footprint += 1;
            }
            TraceEvent::LadderStep { from, to, .. } => {
                assert_ne!(from, to, "ladder step did not change scope");
                ladder_steps += 1;
            }
            _ => {}
        }
    }
    assert!(ftl_tier_ups >= 1, "no FTL tier-up observed");
    assert!(commits >= 1, "no transaction commit observed");
    assert!(aborts_with_footprint >= 1, "no abort with a write footprint observed");
    assert!(ladder_steps >= 1, "no §V-C ladder step observed");

    // The metrics registry agrees with the event stream (and, unlike the
    // ring, never evicts: the footprint histogram must have seen the
    // capacity aborts too).
    let m = vm.trace_metrics();
    assert!(m.abort_footprint.max > 0, "metrics lost the abort footprints");
    assert!(m.counters["tx-commit"] >= commits, "metrics saw fewer commits than the ring");
    assert!(m.commit_footprint.count >= 1);
    assert!(!m.aborts_by_reason.is_empty());
    assert!(m.residency.contains_key("smash"), "no tier residency for the hot function");

    // Metrics registries merge like ExecStats.
    let mut merged = Metrics::new();
    merged.merge(m);
    merged.merge(&Metrics::new());
    assert_eq!(&merged, m);
}

#[test]
fn jsonl_stream_parses_line_by_line() {
    let src = "
        function work(n) {
            var s = 0;
            for (var i = 0; i < n; i++) { s = (s + i * i) | 0; }
            return s;
        }
        function run() { return work(500); }
    ";
    let mut vm = Vm::new(src, Architecture::NoMap).unwrap();
    vm.enable_tracing(16);
    vm.add_trace_sink(Box::new(CollectingJsonl::default()));
    vm.run_main().unwrap();
    for _ in 0..200 {
        vm.call("run", &[]).unwrap();
    }
    vm.flush_trace();

    let lines = COLLECTED.with(|c| c.borrow().clone());
    assert!(lines.len() >= 2, "expected a header plus events");
    for (i, line) in lines.iter().enumerate() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("line {i} not JSON ({e}): {line}"));
        let obj = match v {
            json::V::Object(m) => m,
            other => panic!("line {i} is not an object: {other:?}"),
        };
        assert_eq!(
            obj.iter().find(|(k, _)| k == "v").map(|(_, v)| v.clone()),
            Some(json::V::Num(SCHEMA_VERSION as f64)),
            "line {i} missing schema version"
        );
        assert!(obj.iter().any(|(k, _)| k == "ev"), "line {i} missing event kind");
        if i == 0 {
            // The stream opens with the schema header (v3+): no envelope,
            // just the version consumers dispatch on.
            assert_eq!(
                obj.iter().find(|(k, _)| k == "ev").map(|(_, v)| v.clone()),
                Some(json::V::Str("header".to_owned())),
                "first line must be the schema header"
            );
            assert!(obj.iter().any(|(k, _)| k == "schema"), "header missing schema field");
        } else {
            assert!(obj.iter().any(|(k, _)| k == "seq"), "line {i} missing seq");
        }
    }
    let headers = lines.iter().filter(|l| l.contains("\"ev\":\"header\"")).count();
    assert_eq!(headers, 1, "schema header must appear exactly once");
}

// The JSONL sink writes through `io::Write`; collect lines in thread-local
// storage so the test can inspect them after the VM consumed the sink.
std::thread_local! {
    static COLLECTED: std::cell::RefCell<Vec<String>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// One persistent `JsonlSink` for the whole stream (so its schema header is
/// written once), drained into `COLLECTED` at flush.
struct CollectingJsonl {
    inner: JsonlSink<Vec<u8>>,
}

impl Default for CollectingJsonl {
    fn default() -> Self {
        CollectingJsonl { inner: JsonlSink::new(Vec::new()) }
    }
}

impl nomap_trace::TraceSink for CollectingJsonl {
    fn record(&mut self, seq: u64, cycles: u64, event: &TraceEvent) {
        self.inner.record(seq, cycles, event);
    }

    fn flush(&mut self) {
        // The test flushes once, at end of stream; consuming the sink here
        // is the only way to reach the bytes behind `io::Write`.
        let sink = std::mem::replace(&mut self.inner, JsonlSink::new(Vec::new()));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        COLLECTED.with(|c| {
            c.borrow_mut().extend(text.lines().map(str::to_owned));
        });
    }
}

/// Minimal recursive-descent JSON parser — just enough to prove each JSONL
/// line is well-formed without pulling in a dependency.
mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum V {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Array(Vec<V>),
        Object(Vec<(String, V)>),
    }

    pub fn parse(s: &str) -> Result<V, String> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<V, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => Ok(V::Str(string(b, i)?)),
            Some(b't') => lit(b, i, "true", V::Bool(true)),
            Some(b'f') => lit(b, i, "false", V::Bool(false)),
            Some(b'n') => lit(b, i, "null", V::Null),
            Some(_) => number(b, i),
            None => Err("unexpected end".into()),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: V) -> Result<V, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {i}"))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<V, String> {
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(V::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        *i += 1; // opening quote
        let mut out = String::new();
        loop {
            match b.get(*i) {
                Some(b'"') => {
                    *i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(&b[*i + 1..*i + 5])
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *i += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&b[*i..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *i += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<V, String> {
        *i += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(V::Array(items));
        }
        loop {
            items.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(V::Array(items));
                }
                _ => return Err(format!("bad array at byte {i}")),
            }
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<V, String> {
        *i += 1; // '{'
        let mut members = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(V::Object(members));
        }
        loop {
            skip_ws(b, i);
            let key = string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("missing ':' at byte {i}"));
            }
            *i += 1;
            members.push((key, value(b, i)?));
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(V::Object(members));
                }
                _ => return Err(format!("bad object at byte {i}")),
            }
        }
    }
}
