//! Abort forensics is observation-only: enabling the blame-attribution
//! layer (tracing + profiling together) must not change guest output or
//! execution statistics, and every capacity abort must carry a concrete,
//! internally consistent blame record (fault site, set occupancy,
//! read/write footprints at the point of failure, ladder attempt).

use nomap_trace::TraceEvent;
use nomap_vm::{Architecture, Vm};

/// A workload big enough to tier to FTL, commit transactions, and overflow
/// the 256 KB ROT write budget (forcing capacity aborts and §V-C ladder
/// steps).
const LADDER_SRC: &str = "
    var N = 40000;
    var big = new Array(N);
    function smash(seed) {
        var acc = 0;
        for (var i = 0; i < N; i++) {
            big[i] = (i ^ seed) & 1023;
            acc = (acc + big[i]) & 1048575;
        }
        return acc;
    }
    function run() { return smash(99); }
";

fn run_workload(vm: &mut Vm) -> String {
    vm.run_main().unwrap();
    let mut last = String::new();
    for _ in 0..60 {
        last = format!("{:?}", vm.call("run", &[]).unwrap());
    }
    last
}

#[test]
fn forensics_do_not_change_stats_or_results() {
    for arch in [Architecture::NoMap, Architecture::NoMapRtm] {
        let mut plain = Vm::new(LADDER_SRC, arch).unwrap();
        let r1 = run_workload(&mut plain);

        // Forensics-on: tracing AND profiling, the full blame path.
        let mut forensic = Vm::new(LADDER_SRC, arch).unwrap();
        forensic.enable_tracing(65536);
        forensic.enable_profiling();
        let r2 = run_workload(&mut forensic);

        assert_eq!(r1, r2, "forensics changed the program result under {arch:?}");
        assert_eq!(plain.stats, forensic.stats, "forensics changed ExecStats under {arch:?}");
        assert!(forensic.trace_emitted() > 0);
    }
}

#[test]
fn capacity_aborts_carry_consistent_blame() {
    let arch = Architecture::NoMap;
    let model = arch.htm_model();
    let line_bytes = model.write_cache.line_bytes;
    let ways = model.write_cache.ways;
    let mut vm = Vm::new(LADDER_SRC, arch).unwrap();
    vm.enable_tracing(65536);
    vm.enable_profiling();
    run_workload(&mut vm);

    let events = vm.trace();
    let mut plain_aborts = Vec::new();
    let mut blames = Vec::new();
    for rec in &events {
        match &rec.event {
            TraceEvent::TxAbort { .. } => plain_aborts.push(rec.seq),
            TraceEvent::TxAbortBlame { .. } => blames.push(rec.clone()),
            _ => {}
        }
    }
    assert_eq!(
        plain_aborts.len(),
        blames.len(),
        "every tx-abort must be paired with one tx-abort-blame"
    );
    // Blame immediately follows its abort in the event stream.
    for (abort_seq, blame) in plain_aborts.iter().zip(&blames) {
        assert_eq!(blame.seq, abort_seq + 1, "blame not adjacent to its abort");
    }

    let mut capacity_blames = 0;
    for rec in &blames {
        let TraceEvent::TxAbortBlame {
            name,
            reason,
            attempt,
            set,
            set_ways,
            read_fault,
            write_lines,
            write_bytes,
            read_lines,
            read_bytes,
            instructions,
            ..
        } = &rec.event
        else {
            unreachable!()
        };
        assert_eq!(*write_bytes, write_lines * line_bytes, "write footprint inconsistent");
        // ROT does not track a read set.
        assert_eq!(*read_lines, 0);
        assert_eq!(*read_bytes, 0);
        assert!(*attempt >= 1);
        if nomap_machine::abort_reason_class(*reason) == "capacity" {
            capacity_blames += 1;
            assert_eq!(name, "smash");
            let set = set.expect("capacity abort must carry a fault site");
            assert!(set < model.write_cache.sets(), "victim set out of range");
            assert!(*set_ways > ways, "victim set did not overflow its ways");
            assert!(!*read_fault, "ROT capacity faults are write faults");
            assert!(*write_lines > 0);
            assert!(*instructions > 0);
        }
    }
    assert!(capacity_blames >= 1, "no capacity abort blame observed");

    // The profiler's calibration maps saw the same forensics.
    let profile = vm.profile().unwrap();
    assert!(!profile.abort_set_pressure.is_empty(), "no set-pressure entries");
    assert!(profile.tx_commits.values().sum::<u64>() > 0, "no commits recorded");
    // Trace metrics carry the set-pressure census keyed by function name.
    let m = vm.trace_metrics();
    assert!(
        m.abort_set_pressure.keys().any(|k| k.starts_with("smash/ways:")),
        "metrics set-pressure census missing: {:?}",
        m.abort_set_pressure
    );
}
