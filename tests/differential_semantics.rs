//! Differential testing: randomly generated numeric MiniJS programs must
//! produce identical results in the interpreter and in fully-optimized
//! NoMap FTL code. This is the workhorse safety net for the entire
//! speculation/deopt/transaction machinery.

use proptest::prelude::*;

use nomap_vm::{Architecture, TierLimit, Vm, VmConfig};

/// A tiny expression AST we generate and print as MiniJS.
#[derive(Debug, Clone)]
enum E {
    A,
    B,
    I,
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Shr(Box<E>, Box<E>),
    UShr(Box<E>, Box<E>),
    Neg(Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::I => "i".into(),
            E::Lit(v) => format!("({v})"),
            E::Add(x, y) => format!("({} + {})", x.render(), y.render()),
            E::Sub(x, y) => format!("({} - {})", x.render(), y.render()),
            E::Mul(x, y) => format!("({} * {})", x.render(), y.render()),
            E::And(x, y) => format!("({} & {})", x.render(), y.render()),
            E::Or(x, y) => format!("({} | {})", x.render(), y.render()),
            E::Xor(x, y) => format!("({} ^ {})", x.render(), y.render()),
            E::Shl(x, y) => format!("({} << ({} & 7))", x.render(), y.render()),
            E::Shr(x, y) => format!("({} >> ({} & 7))", x.render(), y.render()),
            E::UShr(x, y) => format!("({} >>> ({} & 7))", x.render(), y.render()),
            E::Neg(x) => format!("(-{})", x.render()),
            E::Ternary(c, x, y) =>

                format!("(({} & 1) ? {} : {})", c.render(), x.render(), y.render()),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        Just(E::I),
        (-1000i32..1000).prop_map(E::Lit),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Add(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Sub(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Mul(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Or(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Xor(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Shl(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Shr(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::UShr(Box::new(x), Box::new(y))),
            inner.clone().prop_map(|x| E::Neg(Box::new(x))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, x, y)| E::Ternary(Box::new(c), Box::new(x), Box::new(y))),
        ]
    })
}

fn program_for(e: &E) -> String {
    format!(
        "function f(a, b, i) {{ return {}; }}
         function run() {{
             var s = 0;
             for (var i = 0; i < 30; i++) {{
                 s = (s ^ f(i * 3 - 20, 7 - i, i)) | 0;
             }}
             return s;
         }}",
        e.render()
    )
}

fn checksum(src: &str, arch: Architecture, limit: TierLimit) -> Result<String, String> {
    let mut cfg = VmConfig::new(arch);
    cfg.tier_limit = limit;
    let mut vm = Vm::with_config(src, cfg).map_err(|e| e.to_string())?;
    vm.run_main().map_err(|e| e.to_string())?;
    let mut last = String::new();
    for _ in 0..90 {
        let v = vm.call("run", &[]).map_err(|e| e.to_string())?;
        last = format!("{v:?}");
    }
    Ok(last)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case compiles + runs 3 VMs to steady state
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_numeric_programs_agree_across_tiers(e in expr_strategy()) {
        let src = program_for(&e);
        let interp = checksum(&src, Architecture::Base, TierLimit::Interpreter)
            .expect("interpreter run");
        let ftl = checksum(&src, Architecture::Base, TierLimit::Ftl).expect("ftl run");
        let nomap = checksum(&src, Architecture::NoMap, TierLimit::Ftl).expect("nomap run");
        prop_assert_eq!(&interp, &ftl, "Base FTL diverged for {}", e.render());
        prop_assert_eq!(&interp, &nomap, "NoMap diverged for {}", e.render());
    }
}
