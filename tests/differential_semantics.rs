//! Differential testing: randomly generated numeric MiniJS programs must
//! produce identical results in the interpreter and in fully-optimized
//! NoMap FTL code. This is the workhorse safety net for the entire
//! speculation/deopt/transaction machinery.
//!
//! Generation is driven by a deterministic splitmix PRNG (no external
//! crates), so every CI run exercises the same program set.

use nomap_vm::{Architecture, TierLimit, Vm, VmConfig};

/// Deterministic splitmix64 (same construction as `nomap_runtime::Lcg`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A tiny expression AST we generate and print as MiniJS.
#[derive(Debug, Clone)]
enum E {
    A,
    B,
    I,
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Shr(Box<E>, Box<E>),
    UShr(Box<E>, Box<E>),
    Neg(Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::I => "i".into(),
            E::Lit(v) => format!("({v})"),
            E::Add(x, y) => format!("({} + {})", x.render(), y.render()),
            E::Sub(x, y) => format!("({} - {})", x.render(), y.render()),
            E::Mul(x, y) => format!("({} * {})", x.render(), y.render()),
            E::And(x, y) => format!("({} & {})", x.render(), y.render()),
            E::Or(x, y) => format!("({} | {})", x.render(), y.render()),
            E::Xor(x, y) => format!("({} ^ {})", x.render(), y.render()),
            E::Shl(x, y) => format!("({} << ({} & 7))", x.render(), y.render()),
            E::Shr(x, y) => format!("({} >> ({} & 7))", x.render(), y.render()),
            E::UShr(x, y) => format!("({} >>> ({} & 7))", x.render(), y.render()),
            E::Neg(x) => format!("(-{})", x.render()),
            E::Ternary(c, x, y) => {
                format!("(({} & 1) ? {} : {})", c.render(), x.render(), y.render())
            }
        }
    }
}

/// Random expression of bounded depth; leaves mix the three variables and
/// small literals.
fn gen_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(4) {
            0 => E::A,
            1 => E::B,
            2 => E::I,
            _ => E::Lit(rng.below(2000) as i32 - 1000),
        };
    }
    let op = rng.below(11);
    let x = Box::new(gen_expr(rng, depth - 1));
    match op {
        0 => E::Add(x, Box::new(gen_expr(rng, depth - 1))),
        1 => E::Sub(x, Box::new(gen_expr(rng, depth - 1))),
        2 => E::Mul(x, Box::new(gen_expr(rng, depth - 1))),
        3 => E::And(x, Box::new(gen_expr(rng, depth - 1))),
        4 => E::Or(x, Box::new(gen_expr(rng, depth - 1))),
        5 => E::Xor(x, Box::new(gen_expr(rng, depth - 1))),
        6 => E::Shl(x, Box::new(gen_expr(rng, depth - 1))),
        7 => E::Shr(x, Box::new(gen_expr(rng, depth - 1))),
        8 => E::UShr(x, Box::new(gen_expr(rng, depth - 1))),
        9 => E::Neg(x),
        _ => E::Ternary(x, Box::new(gen_expr(rng, depth - 1)), Box::new(gen_expr(rng, depth - 1))),
    }
}

fn program_for(e: &E) -> String {
    format!(
        "function f(a, b, i) {{ return {}; }}
         function run() {{
             var s = 0;
             for (var i = 0; i < 30; i++) {{
                 s = (s ^ f(i * 3 - 20, 7 - i, i)) | 0;
             }}
             return s;
         }}",
        e.render()
    )
}

fn checksum(src: &str, arch: Architecture, limit: TierLimit) -> Result<String, String> {
    let mut cfg = VmConfig::new(arch);
    cfg.tier_limit = limit;
    let mut vm = Vm::with_config(src, cfg).map_err(|e| e.to_string())?;
    vm.run_main().map_err(|e| e.to_string())?;
    let mut last = String::new();
    for _ in 0..90 {
        let v = vm.call("run", &[]).map_err(|e| e.to_string())?;
        last = format!("{v:?}");
    }
    Ok(last)
}

#[test]
fn random_numeric_programs_agree_across_tiers() {
    let mut rng = Rng(0x5EED_CAFE);
    for case in 0..24 {
        let e = gen_expr(&mut rng, 4);
        let src = program_for(&e);
        let interp =
            checksum(&src, Architecture::Base, TierLimit::Interpreter).expect("interpreter run");
        let ftl = checksum(&src, Architecture::Base, TierLimit::Ftl).expect("ftl run");
        let nomap = checksum(&src, Architecture::NoMap, TierLimit::Ftl).expect("nomap run");
        assert_eq!(interp, ftl, "case {case}: Base FTL diverged for {}", e.render());
        assert_eq!(interp, nomap, "case {case}: NoMap diverged for {}", e.render());
    }
}
