//! Targeted deoptimization and abort scenarios: every way a speculation can
//! fail after tier-up must fall back to the Baseline tier (or roll back the
//! transaction) and still compute correct JavaScript semantics.

use nomap_vm::{Architecture, Tier, Value, Vm};

fn hot_vm(src: &str, arch: Architecture, hot_fn: &str) -> Vm {
    let mut vm = Vm::new(src, arch).expect("compiles");
    vm.run_main().expect("main");
    for _ in 0..200 {
        vm.call("run", &[]).expect("warmup");
    }
    assert_eq!(vm.current_tier(hot_fn), Some(Tier::Ftl), "{hot_fn} must be hot");
    vm
}

/// Type speculation fails: a double flows into int32-speculated code.
#[test]
fn type_change_deopts_correctly() {
    let src = "
        function addup(a) {
            var s = 0;
            for (var i = 0; i < a.length; i++) { s += a[i]; }
            return s;
        }
        var ints = new Array(50);
        for (var i = 0; i < 50; i++) { ints[i] = i; }
        function run() { return addup(ints); }
        function poison() { ints[25] = 0.5; return addup(ints); }
        function heal() { ints[25] = 25; return 0; }
    ";
    for arch in [Architecture::Base, Architecture::NoMap] {
        let mut vm = hot_vm(src, arch, "addup");
        let poisoned = vm.call("poison", &[]).unwrap();
        assert_eq!(poisoned.as_number(), (0..50).sum::<i32>() as f64 - 25.0 + 0.5, "{arch:?}");
        vm.call("heal", &[]).unwrap();
        assert_eq!(vm.call("run", &[]).unwrap(), Value::new_int32((0..50).sum()));
    }
}

/// Bounds speculation fails: the loop suddenly reads past the array.
#[test]
fn out_of_bounds_read_yields_undefined() {
    let src = "
        var arr = new Array(40);
        for (var i = 0; i < 40; i++) { arr[i] = 1; }
        var limit = 40;
        function count() {
            var s = 0;
            for (var i = 0; i < limit; i++) {
                if (arr[i] == undefined) { s += 100; } else { s += arr[i]; }
            }
            return s;
        }
        function run() { return count(); }
        function overrun() { limit = 45; return count(); }
    ";
    for arch in [Architecture::Base, Architecture::NoMap] {
        let mut vm = hot_vm(src, arch, "count");
        let v = vm.call("overrun", &[]).unwrap();
        assert_eq!(v, Value::new_int32(40 + 5 * 100), "{arch:?}");
    }
}

/// Hole speculation fails: an element is deleted (hole) mid-array.
#[test]
fn hole_read_yields_undefined() {
    let src = "
        var arr = new Array(30);
        for (var i = 0; i < 30; i++) { arr[i] = 2; }
        var holey = new Array(30);
        for (var i = 0; i < 30; i++) { if (i != 15) { holey[i] = 2; } }
        function total(a) {
            var s = 0;
            for (var i = 0; i < 30; i++) {
                var v = a[i];
                if (v == undefined) { s += 1000; } else { s += v; }
            }
            return s;
        }
        function run() { return total(arr); }
        function punch() { return total(holey); }
    ";
    for arch in [Architecture::Base, Architecture::NoMap] {
        let mut vm = hot_vm(src, arch, "total");
        assert_eq!(vm.call("punch", &[]).unwrap(), Value::new_int32(29 * 2 + 1000), "{arch:?}");
    }
}

/// Shape speculation fails: objects with a different hidden class arrive.
#[test]
fn shape_change_deopts_correctly() {
    let src = "
        function get(o) { return o.x + o.y; }
        var normal = {x: 1, y: 2};
        var flipped = {y: 20, x: 10};
        function run() { return get(normal); }
        function flip() { return get(flipped); }
    ";
    for arch in [Architecture::Base, Architecture::NoMap] {
        let mut vm = hot_vm(src, arch, "get");
        assert_eq!(vm.call("flip", &[]).unwrap(), Value::new_int32(30), "{arch:?}");
        assert_eq!(vm.call("run", &[]).unwrap(), Value::new_int32(3));
    }
}

/// Property write suddenly needs a shape transition.
#[test]
fn transition_after_tier_up() {
    let src = "
        var sink = {v: 0};
        function bump(o, n) {
            var s = 0;
            for (var i = 0; i < n; i++) { o.v = i; s += o.v; }
            return s;
        }
        function run() { return bump(sink, 40); }
        function fresh() { var o = {other: 1}; o.v = 5; return bump(o, 10); }
    ";
    for arch in [Architecture::Base, Architecture::NoMap] {
        let mut vm = hot_vm(src, arch, "bump");
        assert_eq!(vm.call("fresh", &[]).unwrap(), Value::new_int32((0..10).sum()), "{arch:?}");
    }
}

/// Overflow mid-transaction: the SOF path must roll back and re-execute in
/// double precision.
#[test]
fn sof_abort_produces_double_result() {
    let src = "
        function series(start, n) {
            var s = start;
            for (var i = 0; i < n; i++) { s = s + 3; }
            return s;
        }
        function run() { return series(1, 50); }
        function big() { return series(2147483600, 50); }
    ";
    let mut vm = hot_vm(src, Architecture::NoMap, "series");
    let v = vm.call("big", &[]).unwrap();
    assert_eq!(v.as_number(), 2147483600.0 + 150.0);
    assert!(vm.stats.total_aborts() > 0, "the overflow had to abort a transaction");
    // Steady state resumes fine afterwards.
    assert_eq!(vm.call("run", &[]).unwrap(), Value::new_int32(151));
}

/// Array elongation (append) after in-bounds speculation.
#[test]
fn append_after_tier_up() {
    let src = "
        function fill(a, n) {
            for (var i = 0; i < n; i++) { a[i] = i; }
            return a.length;
        }
        var buf = new Array(64);
        function run() { return fill(buf, 64); }
        function grow() { return fill(new Array(4), 64); }
    ";
    for arch in [Architecture::Base, Architecture::NoMap] {
        let mut vm = hot_vm(src, arch, "fill");
        assert_eq!(vm.call("grow", &[]).unwrap(), Value::new_int32(64), "{arch:?}");
    }
}

/// Megamorphic call site: many shapes at one property access.
#[test]
fn megamorphic_site_stays_correct() {
    let src = "
        function pick(o) { return o.k; }
        var o1 = {k: 1}; var o2 = {a: 0, k: 2}; var o3 = {b: 0, c: 0, k: 3};
        var o4 = {d: 0, e: 0, f: 0, k: 4}; var o5 = {g: 0, h: 0, i: 0, j: 0, k: 5};
        function run() {
            return pick(o1) + pick(o2) + pick(o3) + pick(o4) + pick(o5);
        }
    ";
    for arch in [Architecture::Base, Architecture::NoMap] {
        let mut vm = Vm::new(src, arch).unwrap();
        vm.run_main().unwrap();
        for _ in 0..200 {
            assert_eq!(vm.call("run", &[]).unwrap(), Value::new_int32(15), "{arch:?}");
        }
    }
}

/// Capacity ladder: a huge write footprint must shrink transaction scope
/// without changing results.
#[test]
fn capacity_ladder_converges() {
    let src = "
        var N = 40000;
        var big = new Array(N);
        function smash(seed) {
            var acc = 0;
            for (var i = 0; i < N; i++) {
                big[i] = (i ^ seed) & 1023;
                acc = (acc + big[i]) & 1048575;
            }
            return acc;
        }
        function run() { return smash(99); }
    ";
    let mut vm = Vm::new(src, Architecture::NoMap).unwrap();
    vm.run_main().unwrap();
    let expect = vm.call("run", &[]).unwrap();
    for _ in 0..250 {
        assert_eq!(vm.call("run", &[]).unwrap(), expect);
    }
    // 40k words ≈ 320KB of writes: cannot fit the 256KB L2 budget in one
    // transaction, so the ladder must have engaged...
    vm.reset_stats();
    vm.call("run", &[]).unwrap();
    // ...and steady state still commits transactions (tiled) or gave up
    // (TxnScope::None); either way no capacity aborts remain.
    assert_eq!(vm.stats.tx_aborts[1], 0, "steady state must stop capacity-aborting");
}
