//! The paper's qualitative claims, asserted as tests: each configuration
//! of Table II must show its characteristic effect on the right kernel.

use nomap_vm::{Architecture, CheckKind, InstCategory, Vm};

fn steady(src: &str, arch: Architecture) -> Vm {
    let mut vm = Vm::new(src, arch).expect("compiles");
    vm.run_main().expect("main");
    let expect = vm.call("run", &[]).expect("first");
    for _ in 0..200 {
        assert_eq!(vm.call("run", &[]).expect("warm"), expect);
    }
    vm.reset_stats();
    vm.call("run", &[]).expect("measured");
    vm
}

const ARRAY_LOOP: &str = "
    var data = new Array(500);
    for (var i = 0; i < 500; i++) { data[i] = i % 13; }
    function work() {
        var s = 0;
        for (var i = 0; i < 500; i++) { s += data[i]; }
        return s;
    }
    function run() { return work(); }
";

/// §IV-C1 / Fig. 6: NoMap_B combines per-iteration bounds checks into one.
#[test]
fn bounds_combining_reduces_bounds_checks() {
    let s_checks = steady(ARRAY_LOOP, Architecture::NoMapS).stats.checks(CheckKind::Bounds);
    let b_checks = steady(ARRAY_LOOP, Architecture::NoMapB).stats.checks(CheckKind::Bounds);
    assert!(
        b_checks * 10 < s_checks,
        "bounds checks should collapse: NoMap_S={s_checks} NoMap_B={b_checks}"
    );
}

/// §IV-C2 / Fig. 7: the SOF removes per-operation overflow checks.
#[test]
fn sof_removes_overflow_checks() {
    let b = steady(ARRAY_LOOP, Architecture::NoMapB).stats.checks(CheckKind::Overflow);
    let full = steady(ARRAY_LOOP, Architecture::NoMap).stats.checks(CheckKind::Overflow);
    assert!(b > 0, "NoMap_B still executes overflow checks");
    assert_eq!(full, 0, "NoMap removes every in-transaction overflow check");
}

/// RTM has no SOF (paper §VI-B), so overflow checks stay.
#[test]
fn rtm_keeps_overflow_checks() {
    let rtm = steady(ARRAY_LOOP, Architecture::NoMapRtm).stats.checks(CheckKind::Overflow);
    assert!(rtm > 0, "RTM cannot use the Sticky Overflow Flag");
}

/// Table II ordering on instruction counts for a transaction-friendly
/// kernel: Base ≥ NoMap_S ≥ NoMap_B ≥ NoMap ≥ NoMap_BC.
#[test]
fn instruction_counts_follow_table_ii_order() {
    let counts: Vec<u64> = [
        Architecture::Base,
        Architecture::NoMapS,
        Architecture::NoMapB,
        Architecture::NoMap,
        Architecture::NoMapBc,
    ]
    .iter()
    .map(|&a| steady(ARRAY_LOOP, a).stats.total_insts())
    .collect();
    for w in counts.windows(2) {
        assert!(w[0] >= w[1], "expected monotone improvement, got {counts:?}");
    }
    assert!(counts[4] < counts[0], "NoMap_BC must clearly beat Base: {counts:?}");
}

/// Fig. 8/9 category structure: under Base everything FTL is NoTM; under
/// NoMap the hot loop moves into TMOpt.
#[test]
fn categories_shift_into_transactions() {
    let base = steady(ARRAY_LOOP, Architecture::Base);
    assert_eq!(base.stats.insts(InstCategory::TmOpt), 0);
    assert_eq!(base.stats.insts(InstCategory::TmUnopt), 0);
    assert!(base.stats.insts(InstCategory::NoTm) > 0);

    let nomap = steady(ARRAY_LOOP, Architecture::NoMap);
    assert!(nomap.stats.insts(InstCategory::TmOpt) > 0, "hot loop runs transactionally");
    assert!(
        nomap.stats.insts(InstCategory::TmOpt) > nomap.stats.insts(InstCategory::NoTm),
        "the loop dominates this kernel"
    );
}

/// Functions called from inside a transaction count as TMUnopt (paper
/// §VII-A's K05/K06 observation).
#[test]
fn callee_work_counts_as_tmunopt() {
    let src = "
        function helper(x) { return (x * 3) & 255; }
        var data = new Array(200);
        for (var i = 0; i < 200; i++) { data[i] = i; }
        function work() {
            var s = 0;
            for (var i = 0; i < 200; i++) { s += helper(data[i]); }
            return s;
        }
        function run() { return work(); }
    ";
    let vm = steady(src, Architecture::NoMap);
    assert!(
        vm.stats.insts(InstCategory::TmUnopt) > 0,
        "helper() inside work()'s transaction is TMUnopt"
    );
}

/// §III-A2: in steady state, checks (practically) never fail.
#[test]
fn steady_state_has_no_deopts() {
    let vm = steady(ARRAY_LOOP, Architecture::Base);
    assert_eq!(vm.stats.deopts, 0);
    let vm = steady(ARRAY_LOOP, Architecture::NoMap);
    assert_eq!(vm.stats.total_aborts(), 0, "no aborts in steady state");
}

/// Table IV: committed transactions report a bounded write footprint that
/// fits the 256KB L2 budget.
#[test]
fn transaction_footprints_fit_rot_budget() {
    let src = "
        var buf = new Array(2000);
        function fill() {
            for (var i = 0; i < 2000; i++) { buf[i] = i & 7; }
            return buf[1999];
        }
        function run() { return fill(); }
    ";
    let vm = steady(src, Architecture::NoMap);
    let c = vm.stats.tx_character;
    assert!(c.committed > 0);
    assert!(c.footprint_max >= 2000 * 8, "2000 words written: {}", c.footprint_max);
    assert!(c.footprint_max <= 256 * 1024, "fits the L2 budget");
    assert!(c.max_assoc >= 1 && c.max_assoc <= 8);
}

/// The Fence/XBegin/XEnd cycle overheads appear under NoMap but not Base.
#[test]
fn htm_overheads_only_under_transactions() {
    let base = steady(ARRAY_LOOP, Architecture::Base);
    assert_eq!(base.stats.tx_begun, 0);
    assert_eq!(base.stats.cycles_tm, 0);
    let nomap = steady(ARRAY_LOOP, Architecture::NoMap);
    assert!(nomap.stats.tx_begun > 0);
    assert!(nomap.stats.cycles_tm > 0);
}

/// §V-A: irrevocable events (I/O) abort the transaction; the Baseline
/// re-execution performs them non-transactionally, exactly once per
/// iteration.
#[test]
fn print_inside_transaction_aborts_first() {
    let src = "
        function work(n) {
            var s = 0;
            for (var i = 0; i < n; i++) {
                s += i;
                if (i == 3 && n > 90) { print(i); }
            }
            return s;
        }
        function run() { return work(80); }
        function noisy() { return work(100); }
    ";
    let mut vm = steady(src, Architecture::NoMap);
    let before = vm.output().matches('3').count();
    let v = vm.call("noisy", &[]).unwrap();
    assert_eq!(v.as_number(), (0..100).sum::<i32>() as f64);
    let after = vm.output().matches('3').count();
    assert_eq!(after - before, 1, "the print ran exactly once");
    assert!(vm.stats.total_aborts() > 0, "the I/O aborted the transaction");
}
