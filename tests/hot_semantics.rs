//! Table-driven semantic corners, each driven hot so the FTL paths (not
//! just the interpreter) execute them: float↔int conversions, modulo,
//! shifts, ternaries, string fallbacks, Math inlining.

use nomap_vm::{Architecture, Value, Vm};

/// Runs `src` hot under Base and NoMap. Values are compared *numerically*:
/// a hot tier may legitimately return `Double(42)` where the interpreter
/// returned `Int32(42)` (real engines behave the same; JavaScript cannot
/// observe the representation).
fn run_hot(src: &str) -> (Value, Value) {
    let mut results = Vec::new();
    for arch in [Architecture::Base, Architecture::NoMap] {
        let mut vm = Vm::new(src, arch).expect("compiles");
        vm.run_main().expect("main");
        let first = vm.call("run", &[]).expect("first");
        for _ in 0..200 {
            let v = vm.call("run", &[]).expect("hot");
            if v.is_number() && first.is_number() {
                assert_eq!(v.as_number(), first.as_number(), "{arch:?} drifted");
            } else {
                assert_eq!(v, first, "{arch:?} drifted");
            }
        }
        results.push(first);
    }
    (results[0], results[1])
}

fn check(src: &str, expect: f64) {
    let (base, nomap) = run_hot(src);
    assert_eq!(base.as_number(), nomap.as_number(), "architectures disagree for {src}");
    assert_eq!(base.as_number(), expect, "wrong value for {src}");
}

#[test]
fn floor_division_as_array_index() {
    check(
        "var a = new Array(50);
         for (var i = 0; i < 50; i++) { a[i] = i * 2; }
         function run() {
             var s = 0;
             for (var i = 0; i < 100; i++) { s += a[Math.floor(i / 2)]; }
             return s;
         }",
        (0..100).map(|i| (i / 2) * 2).sum::<i32>() as f64,
    );
}

#[test]
fn integer_modulo_stays_int() {
    check(
        "function run() {
             var s = 0;
             for (var i = 1; i < 200; i++) { s += i % 7; }
             return s;
         }",
        (1..200).map(|i| i % 7).sum::<i32>() as f64,
    );
}

#[test]
fn float_modulo() {
    check(
        "function run() {
             var s = 0.0;
             for (var i = 0; i < 100; i++) { s += (i * 1.5) % 4.0; }
             return Math.floor(s * 100);
         }",
        {
            let mut s = 0.0f64;
            for i in 0..100 {
                s += (i as f64 * 1.5) % 4.0;
            }
            (s * 100.0).floor()
        },
    );
}

#[test]
fn unsigned_shift_produces_large_values() {
    check(
        "function run() {
             var s = 0.0;
             for (var i = 0; i < 64; i++) { s += (-1 >>> (i & 7)); }
             return Math.floor(s / 1000000);
         }",
        {
            let mut s = 0.0f64;
            for i in 0..64u32 {
                s += ((-1i32 as u32) >> (i & 7)) as f64;
            }
            (s / 1_000_000.0).floor()
        },
    );
}

#[test]
fn ternary_in_hot_loop() {
    check(
        "function run() {
             var s = 0;
             for (var i = 0; i < 150; i++) { s += (i & 1) ? i : -i; }
             return s;
         }",
        (0..150).map(|i| if i & 1 == 1 { i } else { -i }).sum::<i32>() as f64,
    );
}

#[test]
fn logical_operators_short_circuit() {
    check(
        "var calls = 0;
         function bump() { calls = calls + 1; return 1; }
         function run() {
             calls = 0;
             var s = 0;
             for (var i = 0; i < 50; i++) {
                 var v = (i > 24) && bump();
                 if (v) { s++; }
                 var w = (i > 24) || bump();
                 if (w) { s++; }
             }
             return s * 1000 + calls;
         }",
        {
            // i in 25..50: && calls bump (25 calls); i in 0..25: || calls
            // bump (25 calls). s: && truthy 25 times, || truthy 50 times.
            (75 * 1000 + 50) as f64
        },
    );
}

#[test]
fn negation_of_doubles_and_ints() {
    check(
        "function run() {
             var s = 0.0;
             for (var i = 1; i < 80; i++) {
                 s += -i;
                 s += -(i * 0.5);
             }
             return s;
         }",
        (1..80).map(|i| -(i as f64) - (i as f64 * 0.5)).sum::<f64>(),
    );
}

#[test]
fn string_concat_in_warm_code() {
    let (base, _) = run_hot(
        "function run() {
             var s = '';
             for (var i = 0; i < 10; i++) { s = s + i; }
             return s.length;
         }",
    );
    assert_eq!(base, Value::new_int32(10));
}

#[test]
fn math_inlining_matches_runtime() {
    check(
        "function run() {
             var s = 0.0;
             for (var i = 1; i < 60; i++) {
                 s += Math.sqrt(i) + Math.abs(-i) + Math.min(i, 10) + Math.max(i, 20);
             }
             return Math.floor(s * 1000);
         }",
        {
            let mut s = 0.0f64;
            for i in 1..60 {
                let f = i as f64;
                s += f.sqrt() + f + f.min(10.0) + f.max(20.0);
            }
            (s * 1000.0).floor()
        },
    );
}

#[test]
fn nested_loops_with_break_continue() {
    check(
        "function run() {
             var s = 0;
             for (var i = 0; i < 30; i++) {
                 for (var j = 0; j < 30; j++) {
                     if (j == i) { continue; }
                     if (j > 20) { break; }
                     s++;
                 }
             }
             return s;
         }",
        {
            let mut s = 0;
            for i in 0..30 {
                for j in 0..30 {
                    if j == i {
                        continue;
                    }
                    if j > 20 {
                        break;
                    }
                    s += 1;
                }
            }
            s as f64
        },
    );
}

#[test]
fn do_while_hot() {
    check(
        "function run() {
             var s = 0;
             var i = 100;
             do { s += i; i--; } while (i > 0);
             return s;
         }",
        (1..=100).sum::<i32>() as f64,
    );
}

#[test]
fn typeof_results() {
    let (base, _) = run_hot(
        "function t(x) { return typeof x; }
         function run() {
             var s = '';
             s = s + t(1) + '/' + t('a') + '/' + t(true) + '/' + t(undefined) + '/' + t(null);
             return s.length;
         }",
    );
    let expect = "number/string/boolean/undefined/object".len() as i32;
    assert_eq!(base, Value::new_int32(expect));
}
