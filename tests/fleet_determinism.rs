//! Fleet determinism property tests: a sharded corpus run must be
//! bit-identical whether it runs on 1 worker or 4, and a panicking shard
//! must be isolated (retried, flagged, and the run still completes).
//!
//! Workload/config samples are drawn with a deterministic splitmix PRNG
//! (no external crates), so every CI run covers the same sample set.

use nomap_fleet::{run_sharded, FleetConfig};
use nomap_vm::Architecture;
use nomap_workloads::fleet::{corpus, run_corpus_sharded, CorpusMerge};
use nomap_workloads::RunSpec;

/// Deterministic splitmix64 (same construction as `nomap_runtime::Lcg`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Random (workload, config) shard list: the property must hold for any
/// mix of architectures and warmup depths, not just the canonical corpus.
fn sample_specs(rng: &mut Rng, shards: usize) -> Vec<(nomap_workloads::Workload, RunSpec)> {
    let all = corpus();
    let archs = Architecture::ALL;
    (0..shards)
        .map(|_| {
            let w = all[rng.below(all.len() as u64) as usize].clone();
            let arch = archs[rng.below(archs.len() as u64) as usize];
            let mut spec = RunSpec::quick(arch);
            spec.warmup = 40 + rng.below(80) as u32;
            spec.measured = 1 + rng.below(3) as u32;
            (w, spec)
        })
        .collect()
}

/// Debug builds sample a smaller corpus so plain `cargo test -q` stays
/// quick; the release CI lane runs the full breadth.
const ROUNDS: usize = if cfg!(debug_assertions) { 1 } else { 3 };
const SHARDS: usize = if cfg!(debug_assertions) { 4 } else { 12 };

#[test]
fn sharded_run_is_bit_identical_across_worker_counts() {
    let mut rng = Rng(0xF1EE7);
    for round in 0..ROUNDS {
        let specs = sample_specs(&mut rng, SHARDS);
        let seq = run_corpus_sharded(&specs, &FleetConfig::sequential());
        let par = run_corpus_sharded(&specs, &FleetConfig::with_jobs(4));
        assert_eq!(seq.shards.len(), par.shards.len());
        for (s, p) in seq.shards.iter().zip(&par.shards) {
            assert_eq!(s.index, p.index);
            let (sr, pr) = (s.outcome.as_ref().unwrap(), p.outcome.as_ref().unwrap());
            assert_eq!(sr.id, pr.id, "round {round}: shard {} id drifted", s.index);
            assert_eq!(sr.stats, pr.stats, "round {round}: ExecStats differ on {}", sr.id);
            assert_eq!(sr.metrics, pr.metrics, "round {round}: Metrics differ on {}", sr.id);
            assert_eq!(sr.profile, pr.profile, "round {round}: ProfileData differ on {}", sr.id);
            assert_eq!(sr.checksum, pr.checksum, "round {round}: checksum differs on {}", sr.id);
            assert_eq!(sr.output, pr.output, "round {round}: guest output differs on {}", sr.id);
        }
        // Canonical-order merging erases scheduling entirely: the merged
        // aggregates must also be equal, field for field.
        let ms = CorpusMerge::from_runs(seq.shards.iter().map(|s| s.outcome.as_ref().unwrap()));
        let mp = CorpusMerge::from_runs(par.shards.iter().map(|s| s.outcome.as_ref().unwrap()));
        assert_eq!(ms.stats, mp.stats);
        assert_eq!(ms.metrics, mp.metrics);
        assert_eq!(ms.profile, mp.profile);
        assert_eq!(ms.output, mp.output);
        // Scheduling telemetry is the one thing allowed to differ; the
        // deterministic parts of the summary still must not.
        assert_eq!(seq.summary.shards, par.summary.shards);
        assert_eq!(seq.summary.failed, par.summary.failed);
        assert_eq!(par.summary.jobs, 4.min(specs.len()));
    }
}

#[test]
fn whole_corpus_matches_sequential_under_nomap() {
    let take = if cfg!(debug_assertions) { 8 } else { corpus().len() };
    let specs: Vec<_> =
        corpus().into_iter().take(take).map(|w| (w, RunSpec::quick(Architecture::NoMap))).collect();
    let seq = run_corpus_sharded(&specs, &FleetConfig::sequential());
    let par = run_corpus_sharded(&specs, &FleetConfig::with_jobs(4));
    for (s, p) in seq.shards.iter().zip(&par.shards) {
        let (sr, pr) = (s.outcome.as_ref().unwrap(), p.outcome.as_ref().unwrap());
        assert_eq!((sr.id, &sr.stats, &sr.checksum), (pr.id, &pr.stats, &pr.checksum));
    }
}

#[test]
fn panicking_shard_is_isolated_retried_and_flagged() {
    let config = FleetConfig::with_jobs(4);
    let run = run_sharded(8, &config, |i| {
        if i == 3 {
            panic!("shard 3 always dies");
        }
        Ok::<usize, String>(i * 10)
    });
    assert_eq!(run.shards.len(), 8);
    assert_eq!(run.summary.failed, 1);
    assert_eq!(run.summary.retried, 1);
    for shard in &run.shards {
        if shard.index == 3 {
            let err = shard.outcome.as_ref().unwrap_err();
            assert!(err.contains("shard 3 always dies"), "panic message lost: {err}");
            assert_eq!(shard.attempts, 2, "failed shard must be retried once");
        } else {
            assert_eq!(*shard.outcome.as_ref().unwrap(), shard.index * 10);
            assert_eq!(shard.attempts, 1);
        }
    }
    assert_eq!(run.failures().count(), 1);
}

#[test]
fn cycle_budget_failures_are_deterministic_across_worker_counts() {
    // A budget small enough to trip on every workload: the failure string
    // (spent/budget counts) must be identical under any scheduling.
    let specs: Vec<_> = corpus()
        .into_iter()
        .take(6)
        .map(|w| (w, RunSpec::quick(Architecture::Base).with_budget(10)))
        .collect();
    let seq = run_corpus_sharded(&specs, &FleetConfig::sequential());
    let par = run_corpus_sharded(&specs, &FleetConfig::with_jobs(4));
    assert_eq!(seq.summary.failed, specs.len());
    for (s, p) in seq.shards.iter().zip(&par.shards) {
        assert_eq!(s.outcome.as_ref().unwrap_err(), p.outcome.as_ref().unwrap_err());
        assert_eq!(s.attempts, p.attempts);
    }
}
