//! Cycle-attribution profiling is observation-only and exact: enabling it
//! must not change execution statistics or program results, and the ledger
//! must account for every single cycle `ExecStats` counts — across
//! transactions, capacity aborts, §V-C ladder retries and steady state.

use nomap_vm::{Architecture, ProfileData, RegionKind, Vm};

/// Same shape as the trace-observation workload: tiers to FTL, commits
/// transactions, overflows the ROT write budget (capacity aborts + ladder
/// steps), so cycles land in main, txn-body, txn-retry-ladder and check
/// regions.
const LADDER_SRC: &str = "
    var N = 40000;
    var big = new Array(N);
    function smash(seed) {
        var acc = 0;
        for (var i = 0; i < N; i++) {
            big[i] = (i ^ seed) & 1023;
            acc = (acc + big[i]) & 1048575;
        }
        return acc;
    }
    function run() { return smash(99); }
";

fn run_workload(vm: &mut Vm) -> String {
    vm.run_main().unwrap();
    let mut last = String::new();
    for _ in 0..60 {
        last = format!("{:?}", vm.call("run", &[]).unwrap());
    }
    last
}

#[test]
fn profiling_does_not_change_stats_or_results() {
    let mut plain = Vm::new(LADDER_SRC, Architecture::NoMap).unwrap();
    let r1 = run_workload(&mut plain);

    let mut profiled = Vm::new(LADDER_SRC, Architecture::NoMap).unwrap();
    profiled.enable_profiling();
    let r2 = run_workload(&mut profiled);

    assert_eq!(r1, r2, "profiling changed the program result");
    assert_eq!(plain.stats, profiled.stats, "profiling changed ExecStats");
    assert!(
        profiled.profile().is_some_and(|p| !p.ledger.is_empty()),
        "enabled profiler collected nothing"
    );
}

#[test]
fn ledger_conserves_every_cycle_and_feeds_schema_v3() {
    let mut vm = Vm::new(LADDER_SRC, Architecture::NoMap).unwrap();
    vm.enable_tracing(16);
    vm.enable_profiling();
    run_workload(&mut vm);

    // Conservation: every cycle ExecStats counted is attributed; the only
    // slack allowed by design is the explicit `<vm>`/other bucket, which is
    // itself part of the ledger total.
    let profile = vm.profile().unwrap().clone();
    assert_eq!(profile.ledger.total(), vm.stats.total_cycles(), "ledger lost or invented cycles");

    // The transactional workload populates the interesting regions.
    let by_kind = profile.ledger.by_kind();
    assert!(by_kind.contains_key(&RegionKind::Main), "no main-region cycles");
    assert!(by_kind.contains_key(&RegionKind::TxnBody), "no transactional cycles");
    assert!(
        by_kind.contains_key(&RegionKind::TxnRetryLadder),
        "capacity aborts attributed no retry-ladder cycles"
    );
    assert!(!profile.aborts.is_empty(), "no abort reasons recorded");
    assert!(
        profile.abort_footprint.values().any(|h| h.max > 0),
        "no abort write footprints sketched"
    );
    assert!(!profile.checks.is_empty(), "no executed checks recorded");

    // Ledger regions flow through the tracer as schema-v3 cycle-region
    // events, and the metrics registry aggregates them without loss.
    let emitted_before = vm.trace_emitted();
    vm.flush_profile_to_trace();
    assert!(vm.trace_emitted() > emitted_before, "flush emitted no events");
    let metrics_total: u64 = vm.trace_metrics().cycles_by_region.values().sum();
    assert_eq!(
        metrics_total,
        profile.ledger.total(),
        "metrics aggregation disagrees with the ledger"
    );

    // A window reset clears the ledger with the stats, so the invariant
    // holds for the next measurement window too.
    vm.reset_stats();
    assert_eq!(vm.profile().unwrap().ledger.total(), 0);
    vm.call("run", &[]).unwrap();
    assert_eq!(
        vm.profile().unwrap().ledger.total(),
        vm.stats.total_cycles(),
        "conservation broke after reset_stats"
    );
}

#[test]
fn vm_profiles_merge_commutatively() {
    let collect = |calls: usize| {
        let mut vm = Vm::new(LADDER_SRC, Architecture::NoMap).unwrap();
        vm.enable_profiling();
        vm.run_main().unwrap();
        for _ in 0..calls {
            vm.call("run", &[]).unwrap();
        }
        vm.profile().unwrap().clone()
    };
    let a = collect(30);
    let b = collect(45);

    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba, "VM profile merge must be commutative");
    assert_eq!(ab.ledger.total(), a.ledger.total() + b.ledger.total());

    let mut empty = ProfileData::new();
    empty.merge(&a);
    assert_eq!(empty, a, "merge into empty must copy");
}
