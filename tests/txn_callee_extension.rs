//! Tests for the transaction-aware-callee extension (beyond the paper;
//! addresses the `TMUnopt` limitation of §VII-A: "instructions in a
//! function that is called from within a transaction ... cannot take
//! advantage of being inside a transaction").

use nomap_vm::{Architecture, InstCategory, Value, Vm, VmConfig};

/// K05-shaped kernel: a helper called once per hot-loop iteration.
const HELPER_LOOP: &str = "
    function helper(x) { return ((x * 3) + 1) & 255; }
    var data = new Array(300);
    for (var i = 0; i < 300; i++) { data[i] = i; }
    function work() {
        var s = 0;
        for (var i = 0; i < 300; i++) { s += helper(data[i]); }
        return s;
    }
    function run() { return work(); }
";

fn steady(config: VmConfig) -> Vm {
    let mut vm = Vm::with_config(HELPER_LOOP, config).expect("compiles");
    vm.run_main().expect("main");
    let expect = vm.call("run", &[]).expect("first");
    for _ in 0..250 {
        assert_eq!(vm.call("run", &[]).expect("warm"), expect);
    }
    vm.reset_stats();
    vm.call("run", &[]).expect("measured");
    vm
}

#[test]
fn extension_is_off_by_default() {
    let vm = steady(VmConfig::new(Architecture::NoMap));
    assert!(
        vm.stats.insts(InstCategory::TmUnopt) > 0,
        "paper configuration keeps the callee transaction-unaware"
    );
}

#[test]
fn callee_variant_moves_work_into_tmopt() {
    let mut cfg = VmConfig::new(Architecture::NoMap);
    cfg.txn_callees = true;
    let vm = steady(cfg);
    assert_eq!(
        vm.stats.insts(InstCategory::TmUnopt),
        0,
        "the helper now runs transaction-aware code"
    );
    assert!(vm.stats.insts(InstCategory::TmOpt) > 0);
}

#[test]
fn callee_variant_reduces_instructions() {
    let base = steady(VmConfig::new(Architecture::NoMap));
    let mut cfg = VmConfig::new(Architecture::NoMap);
    cfg.txn_callees = true;
    let ext = steady(cfg);
    assert!(
        ext.stats.total_insts() < base.stats.total_insts(),
        "callee SMPs removed: {} vs {}",
        ext.stats.total_insts(),
        base.stats.total_insts()
    );
}

#[test]
fn results_identical_with_extension() {
    for (label, on) in [("off", false), ("on", true)] {
        let mut cfg = VmConfig::new(Architecture::NoMap);
        cfg.txn_callees = on;
        let mut vm = Vm::with_config(HELPER_LOOP, cfg).unwrap();
        vm.run_main().unwrap();
        for _ in 0..250 {
            let v = vm.call("run", &[]).unwrap();
            let expect: i32 = (0..300).map(|x| ((x * 3) + 1) & 255).sum();
            assert_eq!(v, Value::new_int32(expect), "txn_callees={label}");
        }
    }
}

/// A failing check inside the callee variant must abort the *caller's*
/// transaction and recover through its Baseline fallback, preserving
/// JavaScript semantics.
#[test]
fn callee_check_failure_aborts_callers_transaction() {
    let src = "
        function pick(a, i) { return a[i]; }
        var arr = new Array(100);
        for (var i = 0; i < 100; i++) { arr[i] = 1; }
        var limit = 100;
        function work() {
            var s = 0;
            for (var i = 0; i < limit; i++) {
                var v = pick(arr, i);
                if (v == undefined) { s += 50; } else { s += v; }
            }
            return s;
        }
        function run() { return work(); }
        function overrun() { limit = 105; var r = work(); limit = 100; return r; }
    ";
    let mut cfg = VmConfig::new(Architecture::NoMap);
    cfg.txn_callees = true;
    let mut vm = Vm::with_config(src, cfg).unwrap();
    vm.run_main().unwrap();
    for _ in 0..250 {
        assert_eq!(vm.call("run", &[]).unwrap(), Value::new_int32(100));
    }
    vm.reset_stats();
    // Out-of-bounds reads now hit pick()'s abort-mode bounds check: the
    // caller's transaction rolls back and Baseline recomputes correctly.
    let v = vm.call("overrun", &[]).unwrap();
    assert_eq!(v, Value::new_int32(100 + 5 * 50));
    assert!(
        vm.stats.total_aborts() > 0,
        "the callee's failed check aborted the caller's transaction"
    );
    // Steady state recovers.
    assert_eq!(vm.call("run", &[]).unwrap(), Value::new_int32(100));
}
