//! Integration proof for the host-time & allocation observatory.
//!
//! Three guarantees, end to end through the real corpus harness:
//!
//! 1. **Observation does not perturb.** Enabling hostprof leaves guest
//!    output, `ExecStats`, the `Metrics` registry (cycle data *and* the
//!    opcode/digram census) and the checksum bit-identical. `BENCH_*.json`
//!    documents are rendered from those stats, so their identity follows.
//! 2. **Spans conserve.** Every parent span covers the sum of its direct
//!    children in wall time, allocation count and bytes — including spans
//!    recorded by shards that ran concurrently under `--jobs 4`.
//! 3. **Deterministic telemetry is `--jobs`-invariant.** Span entry
//!    counts, allocation attribution and the census are byte-identical
//!    between a sequential and a 4-worker run — the invariant the CI
//!    host-observatory lane byte-diffs.

use std::sync::{Mutex, MutexGuard, OnceLock};

use nomap_fleet::FleetConfig;
use nomap_hostprof::{set_enabled, snapshot, CountingAlloc, SpanReport};
use nomap_vm::{Architecture, Metrics};
use nomap_workloads::fleet::{corpus, run_corpus_sharded, run_workload_observed, CorpusMerge};
use nomap_workloads::RunSpec;

/// Real allocation attribution needs the counting allocator installed in
/// this test binary (opt-in per binary, exactly like the `nomap` CLI).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Hostprof's enable flag and span registry are process-global; the tests
/// that flip them must not interleave.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn enabling_hostprof_leaves_observed_results_bit_identical() {
    let _guard = serial();
    let w = corpus().into_iter().find(|w| w.id == "S01").unwrap();
    let spec = RunSpec::quick(Architecture::NoMap);

    set_enabled(false);
    let off = run_workload_observed(&w, spec).unwrap();

    nomap_hostprof::reset();
    set_enabled(true);
    let on = run_workload_observed(&w, spec).unwrap();
    set_enabled(false);

    assert_eq!(on.stats, off.stats, "ExecStats must not change under observation");
    assert_eq!(on.metrics, off.metrics, "Metrics (cycles + census) must not change");
    assert_eq!(on.checksum, off.checksum);
    assert_eq!(on.output, off.output, "guest output must not change");

    let report = snapshot();
    assert!(
        report.spans.contains_key("workload:S01"),
        "the enabled run must have recorded the shard span: {:?}",
        report.spans.keys().collect::<Vec<_>>()
    );
    assert_eq!(report.spans["workload:S01"].count, 1);
}

#[test]
fn corpus_spans_nest_and_conserve_under_parallel_shards() {
    let _guard = serial();
    nomap_hostprof::reset();
    set_enabled(true);
    // Steady spec so shards tier up and compile spans nest under the
    // workload spans; 5 shards over 4 workers forces real contention.
    let specs: Vec<_> =
        corpus().into_iter().take(5).map(|w| (w, RunSpec::steady(Architecture::NoMap))).collect();
    let run = run_corpus_sharded(&specs, &FleetConfig::with_jobs(4));
    set_enabled(false);
    assert_eq!(run.summary.failed, 0);

    let report = snapshot();
    assert!(report.spans.keys().any(|k| k.starts_with("workload:")));
    assert!(
        report.spans.keys().any(|k| k.contains("/compile:")),
        "steady-state shards must record nested compile spans: {:?}",
        report.spans.keys().collect::<Vec<_>>()
    );
    let violations = report.conservation_violations();
    assert!(violations.is_empty(), "span conservation violated: {violations:?}");
}

#[test]
fn deterministic_telemetry_is_jobs_invariant() {
    let _guard = serial();
    let specs: Vec<_> =
        corpus().into_iter().take(8).map(|w| (w, RunSpec::quick(Architecture::NoMap))).collect();
    let run_with = |jobs: usize| -> (SpanReport, Metrics) {
        nomap_hostprof::reset();
        set_enabled(true);
        let run = run_corpus_sharded(&specs, &FleetConfig::with_jobs(jobs));
        set_enabled(false);
        assert_eq!(run.summary.failed, 0);
        let merged =
            CorpusMerge::from_runs(run.shards.iter().filter_map(|s| s.outcome.as_ref().ok()));
        (snapshot(), merged.metrics)
    };

    let (seq, seq_metrics) = run_with(1);
    let (par, par_metrics) = run_with(4);

    assert_eq!(seq_metrics.opcodes, par_metrics.opcodes, "opcode census must be jobs-invariant");
    assert_eq!(seq_metrics.digrams, par_metrics.digrams, "digram census must be jobs-invariant");
    assert_eq!(
        seq.spans.keys().collect::<Vec<_>>(),
        par.spans.keys().collect::<Vec<_>>(),
        "the span set must be jobs-invariant"
    );
    for (path, a) in &seq.spans {
        let b = &par.spans[path];
        assert_eq!(a.count, b.count, "entry count for {path}");
        assert_eq!(a.allocs, b.allocs, "allocation count for {path}");
        assert_eq!(a.alloc_bytes, b.alloc_bytes, "allocation bytes for {path}");
    }
}
