//! A tour through the tier stack (paper Fig. 2 / Table I in miniature).
//!
//! Caps the VM at each tier in turn and measures one steady-state run of
//! the same kernel, showing the Interpreter → Baseline → DFG → FTL
//! progression and each tier's speedup over the interpreter.
//!
//! Run with: `cargo run --release -p nomap-vm --example tier_tour`

use nomap_vm::{Architecture, TierLimit, Vm, VmConfig};

const KERNEL: &str = "
    function checksum(a, n) {
        var h = 0;
        for (var i = 0; i < n; i++) {
            h = (h * 31 + a[i]) & 16777215;
        }
        return h;
    }
    var data = new Array(512);
    for (var i = 0; i < 512; i++) { data[i] = (i * 2654435761) & 255; }
    function run() { return checksum(data, 512); }
";

fn main() -> Result<(), nomap_vm::VmError> {
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "highest tier", "insts/run", "cycles/run", "checks/run", "speedup"
    );
    let mut interp_cycles = 0.0;
    for (label, limit) in [
        ("Interpreter", TierLimit::Interpreter),
        ("Baseline", TierLimit::Baseline),
        ("DFG", TierLimit::Dfg),
        ("FTL", TierLimit::Ftl),
    ] {
        let mut cfg = VmConfig::new(Architecture::Base);
        cfg.tier_limit = limit;
        let mut vm = Vm::with_config(KERNEL, cfg)?;
        vm.run_main()?;
        let expect = vm.call("run", &[])?;
        for _ in 0..150 {
            assert_eq!(vm.call("run", &[])?, expect);
        }
        vm.reset_stats();
        vm.call("run", &[])?;
        let cycles = vm.stats.total_cycles() as f64;
        if limit == TierLimit::Interpreter {
            interp_cycles = cycles;
        }
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>9.2}x",
            label,
            vm.stats.total_insts(),
            vm.stats.total_cycles(),
            vm.stats.total_checks(),
            interp_cycles / cycles
        );
    }
    println!(
        "\nCheck counters are instrumented for FTL code (the tier the paper\n\
         profiles): speculation is what makes the code fast, and every\n\
         speculation needs an SMP-guarded check — the tension NoMap\n\
         resolves with hardware transactions."
    );
    Ok(())
}
