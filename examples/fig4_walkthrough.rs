//! The paper's Figure 4 example, end to end.
//!
//! `obj.sum += obj.values[idx]` in a loop is the paper's running example of
//! SMPs crippling optimization: property checks, bounds checks, hole checks
//! and overflow checks guard Stack Map Points every iteration, so the FTL
//! tier cannot keep `obj.sum` in a register or hoist the loads of
//! `obj.values`. This example runs the kernel under every architecture of
//! Table II and shows the per-iteration instruction and check counts
//! collapsing exactly the way §IV describes.
//!
//! Run with: `cargo run --release -p nomap-vm --example fig4_walkthrough`

use nomap_vm::{Architecture, CheckKind, Vm};

const FIG4: &str = "
    var obj = {values: new Array(1000), sum: 0};
    for (var j = 0; j < 1000; j++) { obj.values[j] = j % 100; }
    function kernel() {
        obj.sum = 0;
        var len = obj.values.length;
        for (var idx = 0; idx < len; idx++) {
            var value = obj.values[idx];
            obj.sum += value;
        }
        return obj.sum;
    }
    function run() { return kernel(); }
";

fn main() -> Result<(), nomap_vm::VmError> {
    println!("Figure 4 kernel: for (idx...) obj.sum += obj.values[idx]\n");
    println!(
        "{:<10} {:>9} {:>8} {:>9} {:>7} {:>9} {:>7} {:>8} {:>8}",
        "config", "insts", "Bounds", "Overflow", "Type", "Property", "Other", "commits", "deopts"
    );
    let mut base_insts = 0u64;
    for arch in Architecture::ALL {
        let mut vm = Vm::new(FIG4, arch)?;
        vm.run_main()?;
        let expect = vm.call("run", &[])?;
        for _ in 0..200 {
            assert_eq!(vm.call("run", &[])?, expect);
        }
        vm.reset_stats();
        vm.call("run", &[])?;
        let s = &vm.stats;
        if arch == Architecture::Base {
            base_insts = s.total_insts();
        }
        println!(
            "{:<10} {:>9} {:>8} {:>9} {:>7} {:>9} {:>7} {:>8} {:>8}",
            arch.name(),
            s.total_insts(),
            s.checks(CheckKind::Bounds),
            s.checks(CheckKind::Overflow),
            s.checks(CheckKind::Type),
            s.checks(CheckKind::Property),
            s.checks(CheckKind::Other),
            s.tx_committed,
            s.deopts,
        );
        if arch == Architecture::NoMap {
            let saved = 100.0 * (1.0 - s.total_insts() as f64 / base_insts as f64);
            println!(
                "{:<10} ↳ NoMap removes {saved:.1}% of Base's instructions on this kernel",
                ""
            );
        }
    }
    println!(
        "\nWhat to look for (paper §IV):\n\
         • Base        — every iteration re-executes bounds/overflow/type/property checks.\n\
         • NoMap_S     — SMPs became aborts; loads of obj.values hoist, obj.sum promotes\n\
         •               to a register (Fig. 4(d)'s `reg`), type checks on the phi vanish.\n\
         • NoMap_B     — the per-iteration bounds check is replaced by ONE check sunk\n\
         •               below the loop (Fig. 6).\n\
         • NoMap       — overflow checks disappear; the Sticky Overflow Flag is checked\n\
         •               once at XEnd (Fig. 7).\n\
         • NoMap_BC    — the unrealistic floor: every remaining in-transaction check gone.\n\
         • NoMap_RTM   — same code on heavyweight HTM: costlier commits, smaller wins."
    );
    Ok(())
}
