//! A tour of the `nomap-trace` observability layer.
//!
//! Runs a kernel whose write footprint overflows the HTM capacity, with
//! lifecycle tracing enabled, then walks the recorded event stream: the
//! abort-reason histogram, every §V-C ladder transition, the tier-up
//! timeline for the hot function, and the metrics-registry summary that
//! aggregates what the bounded ring may have evicted.
//!
//! Run with: `cargo run --release -p nomap-vm --example trace_tour`

use nomap_vm::{Architecture, TraceEvent, Vm};

// 40 K slots smashed per run: ~320 KB of speculative writes, comfortably
// past the 256 KB ROT budget, so the scope ladder has to engage.
const KERNEL: &str = "
    var N = 40000;
    var big = new Array(N);
    function smash(seed) {
        var acc = 0;
        for (var i = 0; i < N; i++) {
            big[i] = (i ^ seed) & 1023;
            acc = (acc + big[i]) & 1048575;
        }
        return acc;
    }
    function run() { return smash(41); }
";

fn main() -> Result<(), nomap_vm::VmError> {
    let mut vm = Vm::new(KERNEL, Architecture::NoMap)?;
    vm.enable_tracing(1 << 16);
    vm.run_main()?;
    for _ in 0..60 {
        vm.call("run", &[])?;
    }
    vm.flush_trace();

    let events = vm.trace();
    println!(
        "captured {} lifecycle events ({} retained in the ring)\n",
        vm.trace_emitted(),
        events.len()
    );

    println!("-- abort reasons (from the metrics registry) --");
    let metrics = vm.trace_metrics();
    for (reason, count) in &metrics.aborts_by_reason {
        println!("{reason:<16} {count:>6} aborts");
    }
    println!(
        "abort write footprint: mean {:.0} B, max {} B over {} aborts",
        metrics.abort_footprint.mean(),
        metrics.abort_footprint.max,
        metrics.abort_footprint.count
    );

    println!("\n-- §V-C ladder transitions --");
    for rec in &events {
        if let TraceEvent::LadderStep { name, from, to, saw_call, .. } = &rec.event {
            println!(
                "[{:>5}] {name}: {from} -> {to}{}",
                rec.seq,
                if *saw_call { "  (loop body calls out)" } else { "" }
            );
        }
    }

    println!("\n-- tier-up timeline for `smash` --");
    for rec in &events {
        if let TraceEvent::TierUp { name, tier, code_len, scope, .. } = &rec.event {
            if name == "smash" {
                println!(
                    "[{:>5}] @{:<10} -> {tier:?} ({code_len} insts{})",
                    rec.seq,
                    rec.cycles,
                    scope.as_deref().map(|s| format!(", scope {s}")).unwrap_or_default()
                );
            }
        }
    }

    println!("\n-- metrics summary --");
    print!("{}", metrics.summary());
    Ok(())
}
