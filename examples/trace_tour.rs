//! A tour of the `nomap-trace` observability layer and the cycle-
//! attribution profiler built on top of it.
//!
//! Runs a kernel whose write footprint overflows the HTM capacity, with
//! lifecycle tracing *and* cycle attribution enabled, then walks the
//! recorded event stream: the abort-reason histogram, every §V-C ladder
//! transition, the tier-up timeline for the hot function, the metrics-
//! registry summary that aggregates what the bounded ring may have
//! evicted — and finally the profiler's hot-region ranking, where every
//! simulated cycle is charged to a function × tier × region scope and the
//! ledger total provably equals the `ExecStats` cycle count.
//!
//! Run with: `cargo run --release -p nomap-vm --example trace_tour`

use nomap_vm::{Architecture, HotSpotReport, TraceEvent, Vm};

// 40 K slots smashed per run: ~320 KB of speculative writes, comfortably
// past the 256 KB ROT budget, so the scope ladder has to engage.
const KERNEL: &str = "
    var N = 40000;
    var big = new Array(N);
    function smash(seed) {
        var acc = 0;
        for (var i = 0; i < N; i++) {
            big[i] = (i ^ seed) & 1023;
            acc = (acc + big[i]) & 1048575;
        }
        return acc;
    }
    function run() { return smash(41); }
";

fn main() -> Result<(), nomap_vm::VmError> {
    let mut vm = Vm::new(KERNEL, Architecture::NoMap)?;
    vm.enable_tracing(1 << 16);
    vm.enable_profiling();
    vm.run_main()?;
    for _ in 0..60 {
        vm.call("run", &[])?;
    }
    vm.flush_trace();

    let events = vm.trace();
    println!(
        "captured {} lifecycle events ({} retained in the ring)\n",
        vm.trace_emitted(),
        events.len()
    );

    println!("-- abort reasons (from the metrics registry) --");
    let metrics = vm.trace_metrics();
    for (reason, count) in &metrics.aborts_by_reason {
        println!("{reason:<16} {count:>6} aborts");
    }
    println!(
        "abort write footprint: mean {:.0} B, max {} B over {} aborts",
        metrics.abort_footprint.mean(),
        metrics.abort_footprint.max,
        metrics.abort_footprint.count
    );

    println!("\n-- §V-C ladder transitions --");
    for rec in &events {
        if let TraceEvent::LadderStep { name, from, to, saw_call, .. } = &rec.event {
            println!(
                "[{:>5}] {name}: {from} -> {to}{}",
                rec.seq,
                if *saw_call { "  (loop body calls out)" } else { "" }
            );
        }
    }

    println!("\n-- tier-up timeline for `smash` --");
    for rec in &events {
        if let TraceEvent::TierUp { name, tier, code_len, scope, .. } = &rec.event {
            if name == "smash" {
                println!(
                    "[{:>5}] @{:<10} -> {tier:?} ({code_len} insts{})",
                    rec.seq,
                    rec.cycles,
                    scope.as_deref().map(|s| format!(", scope {s}")).unwrap_or_default()
                );
            }
        }
    }

    println!("\n-- metrics summary --");
    print!("{}", metrics.summary());

    // The profiler side of the tour: every cycle the simulator charged is
    // attributed to an (function, tier, region) scope. Flushing the ledger
    // re-emits it through the tracer as schema-v3 cycle-region events, so
    // the metrics registry sees the same totals as the ledger.
    vm.flush_profile_to_trace();
    let report =
        HotSpotReport::new(vm.profile().expect("profiling on").clone(), vm.profile_names())
            .with_stats_total(vm.stats.total_cycles());
    println!("\n-- cycle attribution: hot regions (top 8) --");
    print!("{}", report.render_text(8));
    let by_region: u64 = vm.trace_metrics().cycles_by_region.values().sum();
    println!(
        "\nledger total {} == metrics cycle-region total {} == ExecStats total {}",
        report.data().ledger.total(),
        by_region,
        vm.stats.total_cycles()
    );
    Ok(())
}
