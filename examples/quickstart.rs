//! Quickstart: compile a MiniJS program, let it tier up to FTL under the
//! full NoMap architecture, and inspect what happened.
//!
//! Run with: `cargo run --release -p nomap-vm --example quickstart`

use nomap_vm::{Architecture, CheckKind, InstCategory, Vm};

fn main() -> Result<(), nomap_vm::VmError> {
    let source = "
        function dot(a, b, n) {
            var s = 0;
            for (var i = 0; i < n; i++) { s += a[i] * b[i]; }
            return s;
        }
        var n = 256;
        var xs = new Array(n); var ys = new Array(n);
        for (var i = 0; i < n; i++) { xs[i] = i % 17; ys[i] = i % 23; }
        function run() { return dot(xs, ys, n); }
    ";

    let mut vm = Vm::new(source, Architecture::NoMap)?;
    vm.run_main()?; // top-level setup (arrays, globals)

    // First call runs in the interpreter; repeated calls promote `dot`
    // through Baseline and DFG up to FTL, where NoMap wraps its loop in a
    // hardware transaction.
    let expected = vm.call("run", &[])?;
    for _ in 0..150 {
        assert_eq!(vm.call("run", &[])?, expected);
    }
    println!("checksum: {expected:?}");
    println!("`dot` now runs at tier: {:?}", vm.current_tier("dot").unwrap());

    // Measure one steady-state call.
    vm.reset_stats();
    let again = vm.call("run", &[])?;
    assert_eq!(again, expected);

    let s = &vm.stats;
    println!("\nsteady-state dynamics of one run():");
    println!("  total instructions : {}", s.total_insts());
    for c in InstCategory::ALL {
        println!("  {:<18} : {}", format!("{c:?}"), s.insts(c));
    }
    println!("  cycles (TM/non-TM) : {} / {}", s.cycles_tm, s.cycles_non_tm);
    println!("  transactions       : {} begun, {} committed", s.tx_begun, s.tx_committed);
    println!("  checks executed    :");
    for k in CheckKind::ALL {
        println!(
            "    {:<9}: {} ({:.2}/100 insts)",
            format!("{k:?}"),
            s.checks(k),
            s.checks_per_100(k)
        );
    }
    println!("  avg transaction write footprint: {:.0} bytes", s.tx_character.footprint_avg());
    Ok(())
}
