//! The §V-C transaction-scope ladder in action.
//!
//! A kernel whose loop nest writes a large array overflows the HTM's
//! speculative write capacity. The VM then steps the transaction scope
//! down — whole nest → innermost loop → strip-mined ("tiled") innermost
//! loop — recompiling after each capacity abort until the footprint fits.
//! Under Intel RTM (writes bounded by the 32 KB L1D) the ladder has to
//! descend much further than under the ROT-style lightweight HTM (writes
//! bounded by the 256 KB L2), which is the root of the paper's
//! RTM-vs-lightweight gap on Kraken.
//!
//! Run with: `cargo run --release -p nomap-vm --example htm_ladder`

use nomap_vm::{Architecture, Vm};

// 16 K doubles = 128 KB of writes per run: fits L2, overflows L1D.
const BIG_WRITER: &str = "
    var N = 16384;
    var buf = new Array(N);
    for (var i = 0; i < N; i++) { buf[i] = 0; }
    function fill(seed) {
        var acc = 0;
        for (var y = 0; y < 64; y++) {
            for (var x = 0; x < 256; x++) {
                var i = y * 256 + x;
                buf[i] = (i + seed) & 65535;
                acc = (acc + buf[i]) & 16777215;
            }
        }
        return acc;
    }
    function run() { return fill(7); }
";

fn main() -> Result<(), nomap_vm::VmError> {
    for arch in [Architecture::NoMap, Architecture::NoMapRtm] {
        let mut vm = Vm::new(BIG_WRITER, arch)?;
        vm.run_main()?;
        let expect = vm.call("run", &[])?;
        for _ in 0..250 {
            assert_eq!(vm.call("run", &[])?, expect, "semantics survive the ladder");
        }
        vm.reset_stats();
        for _ in 0..3 {
            vm.call("run", &[])?;
        }
        let s = &vm.stats;
        println!("── {} ──", arch.name());
        println!(
            "  capacity aborts (measured window)      : {} (ladder already settled)",
            s.tx_aborts[1]
        );
        println!("  committed transactions (steady state) : {}", s.tx_committed);
        println!(
            "  write footprint avg/max                : {:.1} KB / {:.1} KB",
            s.tx_character.footprint_avg() / 1024.0,
            s.tx_character.footprint_max as f64 / 1024.0
        );
        println!("  max speculative ways needed in a set   : {}", s.tx_character.max_assoc);
        println!("  instructions per committed transaction : {:.0}", s.tx_character.insts_avg());
        println!();
    }
    println!(
        "ROT's 256 KB write budget usually holds the whole loop nest in one\n\
         transaction; RTM's 32 KB budget forces tiling into many small\n\
         transactions (more XBegin/XEnd overhead — paper §VI-B, §VII)."
    );
    Ok(())
}
